"""Simulated LLM: the stand-in for ChatGPT-3.5 / GPT-4 (DESIGN.md).

Offline reproduction cannot call a hosted model, so this module provides
a *behavioural* simulation: per-model quality profiles drive how often a
generation is correct versus corrupted by a realistic error (wrong API
name, dropped argument, broken wiring, syntax error).  Every call still
builds a real prompt string and meters real token counts, so the cost
analysis (Table III) measures the actual prompt/completion volumes of
Algorithm 1 — only the *quality sampling* is synthetic, calibrated so
raw single-shot pass@k lands in the GPT-3.5/GPT-4 bands of Table II.

Determinism: all sampling flows from one seeded RNG per instance, so a
fixed (profile, seed, temperature) reproduces identical outputs.
"""

from __future__ import annotations

import math
import random
import re
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .codelake import CodeLake, CodeSnippet, TASK_TYPES, canonical_code
from .pricing import UsageMeter
from .tokenizer import count_tokens


@dataclass(frozen=True)
class LLMResponse:
    """One completion with its token accounting."""

    text: str
    prompt_tokens: int
    completion_tokens: int


@dataclass(frozen=True)
class ModelProfile:
    """Behavioural quality profile of a simulated model."""

    name: str
    #: Per-module correctness when generating the whole workflow in one
    #: shot (Table II raw baselines multiply this across modules).
    p_module_singleshot: float
    #: Per-subtask correctness without / with a Code Lake reference.
    p_correct_no_ref: float
    p_correct_with_ref: float
    #: Probability each true module is correctly identified in Step 1.
    p_decompose_module: float
    #: Mean critique scores for correct vs. incorrect code, and noise.
    critique_mean_correct: float = 0.88
    critique_mean_incorrect: float = 0.45
    critique_noise: float = 0.08
    #: Correctness degradation per unit of temperature above 0.2.
    temperature_sensitivity: float = 0.25
    #: Verbosity multiplier on completion lengths (GPT-4 is chattier).
    verbosity: float = 1.0
    #: Task-hardness capabilities: a task with hardness beyond these
    #: anchors stays failed across samples (systematic failure — the
    #: reason the paper's pass@k grows slowly in k).  ``capability_raw``
    #: applies to single-shot whole-workflow generation;
    #: ``capability_ours`` to the decomposed + retrieval pipeline.
    capability_raw: float = 0.40
    capability_ours: float = 0.66


#: Calibrated so that 5-module single-shot workflows land near the
#: paper's raw pass@1 (GPT-3.5 ~35%, GPT-4 ~46%) and the full pipeline
#: lands near the "+Ours" rows (~61% / ~73%); see the Table II bench.
GPT35_PROFILE = ModelProfile(
    name="gpt-3.5-turbo",
    p_module_singleshot=0.985,
    p_correct_no_ref=0.72,
    p_correct_with_ref=0.88,
    p_decompose_module=0.99,
    critique_noise=0.10,
    verbosity=1.0,
    capability_raw=0.385,
    capability_ours=0.655,
)

GPT4_PROFILE = ModelProfile(
    name="gpt-4",
    p_module_singleshot=0.99,
    p_correct_no_ref=0.82,
    p_correct_with_ref=0.94,
    p_decompose_module=0.995,
    critique_noise=0.06,
    verbosity=1.15,
    capability_raw=0.47,
    capability_ours=0.80,
)

PROFILES: Dict[str, ModelProfile] = {
    GPT35_PROFILE.name: GPT35_PROFILE,
    GPT4_PROFILE.name: GPT4_PROFILE,
}


@dataclass(frozen=True)
class SubtaskSpec:
    """One decomposed task module (Step 1 output)."""

    text: str
    task_type: str
    params: Dict[str, object] = field(default_factory=dict)


# ----------------------------------------------------------- corruptions


def _corrupt_wrong_api(code: str, rng: random.Random) -> str:
    replacements = [
        ("couler.run_container", "couler.run_pod"),
        ("couler.run_container", "couler.start_container"),
        ("couler.map", "couler.parallel_map"),
        ("couler.create_oss_artifact", "couler.create_bucket_artifact"),
    ]
    old, new = rng.choice(replacements)
    if old in code:
        return code.replace(old, new, 1)
    return code.replace("couler.", "kouler.", 1)


def _corrupt_missing_arg(code: str, rng: random.Random) -> str:
    lines = code.splitlines()
    candidates = [i for i, l in enumerate(lines) if re.match(r"\s+image=", l)]
    if not candidates:
        candidates = [i for i, l in enumerate(lines) if re.match(r"\s+command=", l)]
    if candidates:
        del lines[rng.choice(candidates)]
        return "\n".join(lines)
    return code


def _corrupt_wiring(code: str, rng: random.Random) -> str:
    lines = code.splitlines()
    candidates = [i for i, l in enumerate(lines) if re.match(r"\s+input=", l)]
    if candidates:
        del lines[rng.choice(candidates)]
        return "\n".join(lines)
    return _corrupt_missing_arg(code, rng)


def _corrupt_syntax(code: str, rng: random.Random) -> str:
    index = code.rfind(")")
    if index > 0:
        return code[:index] + code[index + 1:]
    return code + "\n)"


_CORRUPTIONS = (_corrupt_wrong_api, _corrupt_missing_arg, _corrupt_wiring, _corrupt_syntax)


class SimulatedLLM:
    """The behavioural LLM used by Algorithm 1 and the evaluations."""

    def __init__(
        self,
        profile: "ModelProfile | str" = GPT35_PROFILE,
        code_lake: Optional[CodeLake] = None,
        temperature: float = 0.2,
        seed: int = 0,
    ) -> None:
        if isinstance(profile, str):
            profile = PROFILES[profile]
        if not 0.0 <= temperature <= 2.0:
            raise ValueError(f"temperature out of range: {temperature}")
        self.profile = profile
        self.code_lake = code_lake or CodeLake()
        self.temperature = temperature
        self._rng = random.Random(seed)
        self.meter = UsageMeter(model=profile.name)
        self._task_hardness = 0.0

    # ------------------------------------------------------------- plumbing

    def begin_task(self, description: str) -> float:
        """Fix the intrinsic hardness of the current task.

        Hardness is a stable hash of the description, identical across
        models and samples — so a hard task fails *systematically*, the
        way real workflow-conversion failures do in the paper (pass@k
        grows slowly in k).  Returns the hardness for introspection.
        """
        self._task_hardness = (
            zlib.crc32(description.encode("utf-8")) % 10_000
        ) / 10_000.0
        return self._task_hardness

    def _solve_multiplier(self, capability: float) -> float:
        """Logistic gate: ~1 for tasks within capability, ~0 beyond."""
        return 1.0 / (1.0 + math.exp(40.0 * (self._task_hardness - capability)))

    def _p_effective(self, base: float) -> float:
        penalty = self.profile.temperature_sensitivity * max(
            0.0, self.temperature - 0.2
        )
        return max(0.01, min(0.999, base * (1.0 - penalty)))

    def _p_gated(self, base: float, capability: float, floor: float) -> float:
        """Temperature- and hardness-adjusted correctness probability."""
        mult = self._solve_multiplier(capability)
        return self._p_effective(floor + (base - floor) * mult)

    def _account(self, prompt: str, completion: str) -> LLMResponse:
        prompt_tokens = count_tokens(prompt)
        completion_tokens = int(
            count_tokens(completion) * self.profile.verbosity
        )
        self.meter.add(prompt_tokens, completion_tokens)
        return LLMResponse(completion, prompt_tokens, completion_tokens)

    def _maybe_corrupt(self, code: str, p_correct: float) -> Tuple[str, bool]:
        """Emit ``code`` unchanged with probability ``p_correct`` (already
        temperature/hardness adjusted), else a corrupted variant."""
        if self._rng.random() < p_correct:
            return code, True
        corruption = self._rng.choice(_CORRUPTIONS)
        return corruption(code, self._rng), False

    # ------------------------------------------------- Step 1: decomposition

    def decompose(
        self, description: str, true_modules: Optional[Sequence[SubtaskSpec]] = None
    ) -> List[SubtaskSpec]:
        """Chain-of-thought modular decomposition.

        Candidate modules come from the mechanical keyword decomposer
        (``repro.nl2wf.decompose``) applied to the description itself —
        no ground truth involved.  Callers may pass ``true_modules`` to
        override the candidate set (calibration tests use this).  The
        simulated model then recovers each candidate with probability
        ``p_decompose_module`` and otherwise drops or mislabels it —
        the error modes a real LLM exhibits on this step.
        """
        if true_modules is None:
            from ..nl2wf.decompose import decompose_description

            true_modules = decompose_description(description)
        prompt = (
            "I have a natural language description of a computational task. "
            "Decompose it into smaller, more concise task modules, one per "
            "line, using the predefined task types "
            f"{', '.join(TASK_TYPES)}.\n\nDescription:\n{description}"
        )
        recovered: List[SubtaskSpec] = []
        for module in true_modules:
            roll = self._rng.random()
            if roll < self._p_effective(self.profile.p_decompose_module):
                recovered.append(module)
            elif roll < self._p_effective(self.profile.p_decompose_module) + 0.5 * (
                1 - self._p_effective(self.profile.p_decompose_module)
            ):
                # Mislabel: a near-miss task type.
                wrong = self._rng.choice(
                    [t for t in TASK_TYPES if t != module.task_type]
                )
                recovered.append(
                    SubtaskSpec(text=module.text, task_type=wrong, params=module.params)
                )
            # else: dropped entirely.
        completion = "\n".join(f"- {m.task_type}: {m.text}" for m in recovered)
        self._account(prompt, completion)
        return recovered

    # ------------------------------------------------- Step 2: generation

    def generate_subtask_code(
        self, subtask: SubtaskSpec, reference: Optional[CodeSnippet] = None
    ) -> LLMResponse:
        """Generate Couler code for one task module (Step 2)."""
        reference_text = (
            f"\nReference code:\n{reference.code}" if reference else ""
        )
        prompt = (
            "I have a concise task module, can you help me generate COULER "
            "code for it? The unified interface provides run_container, "
            "run_script, run_job, map, concurrent, when and artifact "
            f"constructors.{reference_text}\n\nThe task is:\n"
            f"{subtask.task_type}: {subtask.text}"
        )
        truth = canonical_code(subtask.task_type, dict(subtask.params))
        if reference is not None and reference.task_type == subtask.task_type:
            p = self._p_gated(
                self.profile.p_correct_with_ref,
                self.profile.capability_ours,
                floor=0.10,
            )
        else:
            # No (or off-topic) reference: the model leans on weaker
            # prior knowledge and its capability ceiling drops.
            p = self._p_gated(
                self.profile.p_correct_no_ref,
                self.profile.capability_ours - 0.12,
                floor=0.05,
            )
        code, _correct = self._maybe_corrupt(truth, p)
        return self._account(prompt, code)

    def generate_workflow_code(
        self, description: str, true_modules: Optional[Sequence[SubtaskSpec]] = None
    ) -> LLMResponse:
        """Single-shot whole-workflow generation (the raw baseline).

        The module plan comes from the mechanical decomposer over the
        description (the model "understands" the request); each module
        independently comes out correct with ``p_module_singleshot`` —
        the paper's observation that "overall workflow complexity
        hampers the performance of LLMs in complete workflow conversion"
        is exactly this multiplicative decay.
        """
        if true_modules is None:
            from ..nl2wf.decompose import decompose_description

            true_modules = decompose_description(description)
        prompt = (
            "Generate complete COULER workflow code for the following "
            f"description, in one response:\n{description}"
        )
        pieces = []
        p = self._p_gated(
            self.profile.p_module_singleshot,
            self.profile.capability_raw,
            floor=0.03,
        )
        for module in true_modules:
            truth = canonical_code(module.task_type, dict(module.params))
            code, _correct = self._maybe_corrupt(truth, p)
            pieces.append(code)
        completion = "\n".join(pieces)
        return self._account(prompt, completion)

    # ------------------------------------------------ Step 3: self-calibration

    def critique(self, code: str, is_correct: bool) -> Tuple[float, LLMResponse]:
        """Score generated code in [0, 1] (Step 3's LLM-as-critic).

        ``is_correct`` is the hidden ground truth the score is sampled
        around; the caller never branches on it directly — only on the
        returned (noisy) score, as Algorithm 1 line 8 does.
        """
        prompt = (
            "Score this COULER snippet between 0 and 1 for compliance with "
            f"the standard templates.\n\nCode:\n{code}"
        )
        mean = (
            self.profile.critique_mean_correct
            if is_correct
            else self.profile.critique_mean_incorrect
        )
        score = max(0.0, min(1.0, self._rng.gauss(mean, self.profile.critique_noise)))
        response = self._account(prompt, f"score: {score:.2f}")
        return score, response

    # ------------------------------------------------ Step 4: user feedback

    def refine_with_feedback(
        self, subtask: SubtaskSpec, previous_code: str, feedback: str
    ) -> LLMResponse:
        """Regenerate after textual user feedback (Step 4).

        Feedback pins down the failure, so correctness probability gets
        a strong boost over plain regeneration.
        """
        prompt = (
            "The generated workflow code did not meet the user's "
            f"requirements. User feedback:\n{feedback}\n\nPrevious code:\n"
            f"{previous_code}\n\nPlease produce corrected COULER code for "
            f"the task: {subtask.task_type}: {subtask.text}"
        )
        truth = canonical_code(subtask.task_type, dict(subtask.params))
        boosted = min(0.98, self.profile.p_correct_with_ref + 0.07)
        p = self._p_gated(boosted, self.profile.capability_ours + 0.05, floor=0.15)
        code, _correct = self._maybe_corrupt(truth, p)
        return self._account(prompt, code)
