"""Automatic hyperparameter tuning — Algorithm 4.

Given a Data Card, a Model Card and a candidate hyperparameter set H,
the tuner obtains a *predicted training log* for every h_i (from an LLM
in production; from the noisy log predictor here), examines the logs,
and returns the candidate with the best predicted performance — no real
training during the search.

Two baselines from the Fig. 8 experiment are included:
``expert_baseline`` (HP-baseline1: manual expert choice) and
``literature_baseline`` (HP-baseline2: historical benchmark defaults).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from .cards import DataCard, HyperparameterSet, ModelCard
from .loggen import parse_training_log, render_training_log
from .surrogate import NoisyLogPredictor, TrainingSurrogate

C = TypeVar("C", bound=Hashable)


def successive_halving(
    candidates: Sequence[C],
    evaluate: Callable[[C], float],
    *,
    rounds: int = 2,
    refine: Optional[Callable[[C], Iterable[C]]] = None,
    minimum: int = 1,
) -> Tuple[List[Tuple[C, float]], List[dict]]:
    """Generic successive-halving search (the Algorithm 4 idiom).

    Evaluates the pool, keeps the best half (ties break toward earlier
    candidates, mirroring :meth:`AutoTuner.tune`), optionally expands
    survivors with ``refine`` neighbourhoods (the
    :meth:`AutoTuner.tune_iterative` half/double pattern), and repeats
    for ``rounds``.  Scores are memoized per candidate, so a survivor
    is never re-evaluated.  Fully deterministic given a deterministic
    ``evaluate``/``refine``.

    Returns ``(ranked, history)``: the final pool best-first with
    scores, and one history record per round (``round``, ``evaluated``
    candidate/score pairs in evaluation order, ``survivors``) — the
    adaptive controller serializes this into its AdaptationLog.
    """
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    if minimum < 1:
        raise ValueError("minimum must be >= 1")
    pool: List[C] = list(dict.fromkeys(candidates))
    if not pool:
        raise ValueError("candidate set is empty")
    scores: Dict[C, float] = {}
    history: List[dict] = []
    for round_index in range(rounds):
        fresh = [cand for cand in pool if cand not in scores]
        for cand in fresh:
            scores[cand] = evaluate(cand)
        ranked = sorted(
            range(len(pool)), key=lambda i: (-scores[pool[i]], i)
        )
        keep = max(minimum, len(pool) // 2)
        survivors = [pool[i] for i in ranked[:keep]]
        history.append(
            {
                "round": round_index,
                "evaluated": [(cand, scores[cand]) for cand in fresh],
                "survivors": list(survivors),
            }
        )
        pool = list(survivors)
        if refine is not None and round_index < rounds - 1:
            extra: List[C] = []
            for cand in survivors:
                extra.extend(refine(cand))
            pool = list(dict.fromkeys(pool + extra))
    order = {cand: i for i, cand in enumerate(pool)}
    final = sorted(pool, key=lambda cand: (-scores[cand], order[cand]))
    return [(cand, scores[cand]) for cand in final], history

#: Signature of the "LLM" the tuner consults: (data, model, hp) -> log text.
LogPredictor = Callable[[DataCard, ModelCard, HyperparameterSet], str]


def make_llm_log_predictor(
    surrogate: TrainingSurrogate, fidelity: float = 0.85, seed: int = 1
) -> LogPredictor:
    """The default predictor: a noisy view of the training surrogate.

    In the paper this role is played by an LLM prompted with the Data
    Card, Model Card and hyperparameters; here the prediction channel
    is the simulated-LLM substitution documented in DESIGN.md.
    """
    noisy = NoisyLogPredictor(surrogate=surrogate, fidelity=fidelity, seed=seed)

    def predict(data: DataCard, model: ModelCard, hp: HyperparameterSet) -> str:
        curve = noisy.predict(hp)
        return render_training_log(data, model, curve)

    return predict


@dataclass
class TuningResult:
    """Everything Algorithm 4 produced for one tuning run."""

    best: HyperparameterSet
    predicted_logs: Dict[str, str] = field(default_factory=dict)
    predicted_scores: Dict[str, float] = field(default_factory=dict)

    def log_for(self, hp: HyperparameterSet) -> str:
        return self.predicted_logs[hp.render()]


class AutoTuner:
    """Algorithm 4 driver."""

    def __init__(self, predictor: LogPredictor) -> None:
        self.predictor = predictor

    def tune_iterative(
        self,
        data: DataCard,
        model: ModelCard,
        candidates: Sequence[HyperparameterSet],
        rounds: int = 2,
    ) -> TuningResult:
        """Multi-round tuning ("after several rounds of testing, we
        select the training hyperparameters that yield the best
        performance").

        Each round tunes over the current candidate set, then the next
        round refines around the winner: neighbouring learning rates at
        half/double the best, plus halved/doubled batch sizes.  The
        final result aggregates all predicted logs.
        """
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        pool = list(candidates)
        result = self.tune(data, model, pool)
        for _ in range(rounds - 1):
            best = result.best
            refined = [best]
            for lr_factor in (0.5, 0.75, 1.5, 2.0):
                refined.append(
                    HyperparameterSet(
                        learning_rate=best.learning_rate * lr_factor,
                        batch_size=best.batch_size,
                        epochs=best.epochs,
                        weight_decay=best.weight_decay,
                        warmup_fraction=best.warmup_fraction,
                    )
                )
            for bs_factor in (0.5, 2.0):
                refined.append(
                    HyperparameterSet(
                        learning_rate=best.learning_rate,
                        batch_size=max(1, int(best.batch_size * bs_factor)),
                        epochs=best.epochs,
                        weight_decay=best.weight_decay,
                        warmup_fraction=best.warmup_fraction,
                    )
                )
            next_result = self.tune(data, model, refined)
            next_result.predicted_logs = {
                **result.predicted_logs,
                **next_result.predicted_logs,
            }
            next_result.predicted_scores = {
                **result.predicted_scores,
                **next_result.predicted_scores,
            }
            # Keep whichever winner predicted best across all rounds.
            if (
                next_result.predicted_scores[next_result.best.render()]
                < result.predicted_scores[result.best.render()]
            ):
                next_result.best = result.best
            result = next_result
        return result

    def tune(
        self,
        data: DataCard,
        model: ModelCard,
        candidates: Sequence[HyperparameterSet],
    ) -> TuningResult:
        """Pick the best candidate by predicted training logs.

        Ties break toward the earlier candidate so results are stable.
        """
        if not candidates:
            raise ValueError("candidate hyperparameter set H is empty")
        logs: Dict[str, str] = {}
        scores: Dict[str, float] = {}
        best: Optional[HyperparameterSet] = None
        best_score = float("-inf")
        for hp in candidates:
            log_text = self.predictor(data, model, hp)
            parsed = parse_training_log(log_text)
            score = parsed.score(data.eval_metric)
            logs[hp.render()] = log_text
            scores[hp.render()] = score
            if score > best_score:
                best, best_score = hp, score
        assert best is not None
        return TuningResult(best=best, predicted_logs=logs, predicted_scores=scores)


def default_candidate_grid(
    model: ModelCard, epochs: int = 10
) -> List[HyperparameterSet]:
    """A reasonable candidate set H around the family's typical range."""
    lrs = [1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2]
    batch_sizes = [64, 256, 1024]
    grid = []
    for lr in lrs:
        for bs in batch_sizes:
            grid.append(
                HyperparameterSet(
                    learning_rate=lr,
                    batch_size=bs,
                    epochs=epochs,
                    weight_decay=0.01,
                    warmup_fraction=0.05 if model.family in ("vit", "gpt") else 0.0,
                )
            )
    return grid


def expert_baseline(model: ModelCard, epochs: int = 10) -> HyperparameterSet:
    """HP-baseline1: manual expert choice (sensible but generic)."""
    presets = {
        "vit": HyperparameterSet(1e-3, 512, epochs, 0.05, 0.1, label="expert"),
        "gpt": HyperparameterSet(1e-3, 128, epochs, 0.1, 0.0, label="expert"),
        "resnet": HyperparameterSet(0.5, 512, epochs, 1e-4, 0.0, label="expert"),
    }
    return presets.get(
        model.family, HyperparameterSet(1e-2, 128, epochs, 0.0, 0.0, label="expert")
    )


def literature_baseline(model: ModelCard, epochs: int = 10) -> HyperparameterSet:
    """HP-baseline2: defaults from historical benchmarks/literature."""
    presets = {
        "vit": HyperparameterSet(1e-2, 4096, epochs, 0.3, 0.0, label="literature"),
        "gpt": HyperparameterSet(2.5e-4, 32, epochs, 0.01, 0.0, label="literature"),
        "resnet": HyperparameterSet(0.1, 256, epochs, 1e-4, 0.0, label="literature"),
    }
    return presets.get(
        model.family, HyperparameterSet(1e-3, 32, epochs, 0.0, 0.0, label="literature")
    )
