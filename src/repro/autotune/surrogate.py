"""Training-dynamics surrogate: the stand-in for real GPU training.

The paper's Algorithm 4 asks an LLM to *predict a training log* for
each candidate hyperparameter set, then picks the best-performing
candidate — no actual training during the search.  This module supplies
both sides of that substitution:

- :class:`TrainingSurrogate` — a parametric response-surface model of
  training dynamics (ground truth in this reproduction: the thing real
  hardware would have produced).  Loss decays exponentially at a rate
  set by how far the learning rate sits from a batch-size-dependent
  optimum (a linear-scaling-rule-shaped surface), with divergence when
  the lr is far too high, plateau levels set by model capacity vs.
  dataset size, and seeded noise.
- a *predictor* view with configurable bias/noise, modelling that an
  LLM's predicted logs are informative but imperfect.

The response surface is smooth and unimodal in log-lr for fixed batch
size, so "pick the best candidate by (predicted) final metric" behaves
the way the paper's experiment assumes.
"""

from __future__ import annotations

import math
import random
import zlib
from dataclasses import dataclass
from typing import Dict, List

from .cards import DataCard, HyperparameterSet, ModelCard


@dataclass(frozen=True)
class EpochMetrics:
    epoch: int
    loss: float
    accuracy: float


@dataclass(frozen=True)
class TrainingCurve:
    """A full training trajectory for one hyperparameter setting."""

    hyperparameters: HyperparameterSet
    epochs: List[EpochMetrics]
    diverged: bool = False

    @property
    def final_loss(self) -> float:
        return self.epochs[-1].loss

    @property
    def final_accuracy(self) -> float:
        return self.epochs[-1].accuracy

    @property
    def best_accuracy(self) -> float:
        return max(e.accuracy for e in self.epochs)


_FAMILY_BASE_LR: Dict[str, float] = {
    # Optimal lr at batch size 256, per model family (heuristic priors).
    "vit": 3e-4,
    "resnet": 1e-1,
    "densenet": 1e-1,
    "gpt": 6e-4,
    "lstm": 1e-3,
    "mlp": 1e-3,
}


@dataclass
class TrainingSurrogate:
    """Deterministic (seeded) synthetic training dynamics."""

    data: DataCard
    model: ModelCard
    seed: int = 0
    noise_scale: float = 0.01

    def optimal_lr(self, batch_size: int) -> float:
        """Linear-scaling-rule-shaped optimum: lr* grows with sqrt(B)."""
        base = _FAMILY_BASE_LR.get(self.model.family, 1e-3)
        return base * math.sqrt(batch_size / 256.0)

    def _capacity_plateau(self) -> float:
        """Best achievable accuracy given model capacity vs. data size.

        Larger models and more data help with diminishing returns; more
        classes make the task harder.
        """
        capacity = math.log10(self.model.num_params)  # ~7..9
        data_term = math.log10(self.data.num_samples)  # ~5..7
        class_penalty = math.log10(self.data.num_classes + 1) / 10.0
        raw = 0.30 + 0.06 * capacity + 0.035 * data_term - class_penalty
        return max(0.05, min(0.97, raw))

    def _initial_loss(self) -> float:
        return math.log(self.data.num_classes)

    def train(self, hp: HyperparameterSet) -> TrainingCurve:
        """Ground-truth training curve for ``hp``."""
        # zlib.crc32 keeps the stream stable across processes (str hash
        # randomization would break reproducibility).
        key = f"{self.seed}|{self.model.name}|{self.data.name}|{hp.render()}"
        rng = random.Random(zlib.crc32(key.encode("utf-8")))
        lr_star = self.optimal_lr(hp.batch_size)
        mistune = abs(math.log10(hp.learning_rate / lr_star))

        # Divergence: lr more than ~30x above optimum blows up.
        diverged = hp.learning_rate > 30.0 * lr_star
        plateau_acc = self._capacity_plateau() * math.exp(-0.35 * mistune**2)
        # Weight decay: small amounts help generalization, too much hurts.
        wd_effect = -2.0 * (hp.weight_decay - 0.02) ** 2 + 0.0008
        plateau_acc = max(0.01, min(0.99, plateau_acc + wd_effect * 10))
        # Warmup mildly helps transformers at high lr.
        if self.model.family in ("vit", "gpt") and hp.warmup_fraction > 0:
            plateau_acc = min(0.99, plateau_acc + 0.01)

        loss0 = self._initial_loss()
        plateau_loss = loss0 * (1.0 - plateau_acc) * 0.35 + 0.05
        # Convergence rate: best near lr*, slower when mistuned; small
        # batches add gradient noise that slows late convergence.
        rate = 0.55 * math.exp(-0.5 * mistune**2) * min(
            1.0, math.sqrt(hp.batch_size / 64.0)
        )
        rate = max(0.02, rate)

        epochs: List[EpochMetrics] = []
        for epoch in range(1, hp.epochs + 1):
            if diverged:
                loss = loss0 * (1.3 ** epoch) + rng.gauss(0, self.noise_scale)
                acc = max(0.0, 1.0 / self.data.num_classes + rng.gauss(0, 1e-4))
            else:
                progress = 1.0 - math.exp(-rate * epoch)
                loss = plateau_loss + (loss0 - plateau_loss) * math.exp(-rate * epoch)
                acc = plateau_acc * progress
                loss += rng.gauss(0, self.noise_scale * loss0 / 10.0)
                acc = min(0.999, max(0.0, acc + rng.gauss(0, self.noise_scale / 4.0)))
            epochs.append(EpochMetrics(epoch=epoch, loss=max(0.0, loss), accuracy=acc))
        return TrainingCurve(hyperparameters=hp, epochs=epochs, diverged=diverged)


@dataclass
class NoisyLogPredictor:
    """An imperfect view of the surrogate: what the "LLM" predicts.

    Adds a systematic bias and extra noise to the ground-truth curve,
    modelling that predicted training logs track real dynamics but are
    not exact.  ``fidelity`` in [0, 1]: 1 reproduces ground truth.
    """

    surrogate: TrainingSurrogate
    fidelity: float = 0.85
    seed: int = 1

    def predict(self, hp: HyperparameterSet) -> TrainingCurve:
        truth = self.surrogate.train(hp)
        rng = random.Random(zlib.crc32(f"{self.seed}|{hp.render()}".encode("utf-8")))
        distortion = (1.0 - self.fidelity) * 0.5
        epochs = [
            EpochMetrics(
                epoch=e.epoch,
                loss=max(0.0, e.loss * (1.0 + rng.gauss(0, distortion))),
                accuracy=min(0.999, max(0.0, e.accuracy * (1.0 + rng.gauss(0, distortion)))),
            )
            for e in truth.epochs
        ]
        return TrainingCurve(
            hyperparameters=hp, epochs=epochs, diverged=truth.diverged
        )
