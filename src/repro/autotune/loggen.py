"""Predicted training logs: render and parse (Algorithm 4 lines 4–6).

The tuner never sees curves directly — faithful to the paper, each
candidate hyperparameter set yields a *textual training log* ("the LLM
returns a training log for each h_i"), and the tuner examines the log
text to extract performance.  Render and parse are exact inverses for
the fields the tuner reads.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List

from .cards import DataCard, ModelCard
from .surrogate import EpochMetrics, TrainingCurve

_EPOCH_RE = re.compile(
    r"^epoch\s+(\d+)/(\d+)\s+\|\s+loss=([0-9.infa]+)\s+\|\s+accuracy=([0-9.]+)",
    re.IGNORECASE,
)
_DIVERGED_RE = re.compile(r"training diverged", re.IGNORECASE)


def render_training_log(
    data: DataCard,
    model: ModelCard,
    curve: TrainingCurve,
) -> str:
    """Render a curve as the textual log Algorithm 4's LLM would emit."""
    hp = curve.hyperparameters
    lines = [
        f"# predicted training log: {model.name} on {data.name}",
        f"# hyperparameters: {hp.render()}",
    ]
    total = len(curve.epochs)
    for metrics in curve.epochs:
        lines.append(
            f"epoch {metrics.epoch}/{total} | loss={metrics.loss:.4f} "
            f"| accuracy={metrics.accuracy:.4f}"
        )
    if curve.diverged:
        lines.append("WARNING: training diverged (loss exploded)")
    else:
        lines.append(
            f"final: loss={curve.final_loss:.4f} accuracy={curve.final_accuracy:.4f}"
        )
    return "\n".join(lines)


@dataclass(frozen=True)
class ParsedLog:
    """What the tuner extracts from a predicted training log."""

    epochs: List[EpochMetrics]
    diverged: bool

    @property
    def final_loss(self) -> float:
        return self.epochs[-1].loss if self.epochs else float("inf")

    @property
    def final_accuracy(self) -> float:
        return self.epochs[-1].accuracy if self.epochs else 0.0

    def score(self, metric: str) -> float:
        """Higher-is-better score under the data card's eval metric."""
        if self.diverged or not self.epochs:
            return float("-inf")
        if metric == "loss":
            return -self.final_loss
        return self.final_accuracy


def parse_training_log(text: str) -> ParsedLog:
    """Parse a rendered (or hand-written) training log."""
    epochs: List[EpochMetrics] = []
    diverged = False
    for line in text.splitlines():
        match = _EPOCH_RE.match(line.strip())
        if match:
            epoch, _total, loss, acc = match.groups()
            try:
                epochs.append(
                    EpochMetrics(
                        epoch=int(epoch), loss=float(loss), accuracy=float(acc)
                    )
                )
            except ValueError:
                diverged = True
        elif _DIVERGED_RE.search(line):
            diverged = True
    return ParsedLog(epochs=epochs, diverged=diverged)
