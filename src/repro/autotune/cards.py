"""Data Cards and Model Cards (paper Sec. IV.C).

The automatic hyperparameter tuner grounds its LLM prompts in a *Data
Card* (dataset name, input type, label space, default evaluation
metrics — after Gebru et al.'s datasheets) and a *Model Card* (model
name, structure, description, architecture hyperparameters — after
Mitchell et al.).  These are plain declarative records; the prompt
builder renders them to text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class DataCard:
    """Structured description of a training dataset."""

    name: str
    modality: str  # "image" | "text" | "tabular" | "audio" | "multimodal"
    num_samples: int
    num_classes: int
    input_shape: str = ""
    label_space: str = ""
    eval_metric: str = "accuracy"

    def __post_init__(self) -> None:
        if self.num_samples <= 0:
            raise ValueError(f"data card {self.name}: num_samples must be > 0")
        if self.num_classes <= 0:
            raise ValueError(f"data card {self.name}: num_classes must be > 0")

    def render(self) -> str:
        """Render for inclusion in an LLM prompt."""
        return (
            f"Dataset: {self.name}\n"
            f"Modality: {self.modality}\n"
            f"Samples: {self.num_samples}\n"
            f"Classes: {self.num_classes}\n"
            f"Input shape: {self.input_shape or 'unspecified'}\n"
            f"Label space: {self.label_space or 'unspecified'}\n"
            f"Evaluation metric: {self.eval_metric}"
        )


@dataclass(frozen=True)
class ModelCard:
    """Structured description of a model architecture."""

    name: str
    family: str  # "vit" | "resnet" | "densenet" | "gpt" | "lstm" | ...
    num_params: int
    description: str = ""
    architecture: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_params <= 0:
            raise ValueError(f"model card {self.name}: num_params must be > 0")

    def render(self) -> str:
        arch = ", ".join(f"{k}={v}" for k, v in sorted(self.architecture.items()))
        return (
            f"Model: {self.name}\n"
            f"Family: {self.family}\n"
            f"Parameters: {self.num_params}\n"
            f"Architecture: {arch or 'unspecified'}\n"
            f"Description: {self.description or 'unspecified'}"
        )


@dataclass(frozen=True)
class HyperparameterSet:
    """One candidate configuration from the search set H."""

    learning_rate: float
    batch_size: int
    epochs: int = 10
    weight_decay: float = 0.0
    warmup_fraction: float = 0.0
    label: str = ""

    def __post_init__(self) -> None:
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be > 0")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be > 0")
        if self.epochs <= 0:
            raise ValueError("epochs must be > 0")

    def render(self) -> str:
        return (
            f"lr={self.learning_rate:g}, batch_size={self.batch_size}, "
            f"epochs={self.epochs}, weight_decay={self.weight_decay:g}, "
            f"warmup={self.warmup_fraction:g}"
        )


#: Reference cards used by the Fig. 8 experiments and the examples.
VIT_CIFAR_DATA = DataCard(
    name="image-classification-1.4m",
    modality="image",
    num_samples=1_400_000,
    num_classes=1000,
    input_shape="3x224x224",
    label_space="object categories",
    eval_metric="accuracy",
)

VIT_MODEL = ModelCard(
    name="vit-base",
    family="vit",
    num_params=86_000_000,
    description="Vision Transformer base, patch 16",
    architecture={"layers": 12, "hidden": 768, "heads": 12, "patch": 16},
)

NANOGPT_DATA = DataCard(
    name="text-corpus-20gb",
    modality="text",
    num_samples=5_000_000,
    num_classes=50_257,
    input_shape="sequence of 1024 tokens",
    label_space="vocabulary",
    eval_metric="loss",
)

NANOGPT_MODEL = ModelCard(
    name="nanogpt",
    family="gpt",
    num_params=124_000_000,
    description="GPT-2-small-scale decoder-only LM",
    architecture={"layers": 12, "hidden": 768, "heads": 12, "context": 1024},
)
