"""Automatic hyperparameter tuning (paper Sec. IV.C, Algorithm 4)."""

from .cards import (
    DataCard,
    HyperparameterSet,
    ModelCard,
    NANOGPT_DATA,
    NANOGPT_MODEL,
    VIT_CIFAR_DATA,
    VIT_MODEL,
)
from .loggen import ParsedLog, parse_training_log, render_training_log
from .surrogate import (
    EpochMetrics,
    NoisyLogPredictor,
    TrainingCurve,
    TrainingSurrogate,
)
from .tuner import (
    AutoTuner,
    TuningResult,
    default_candidate_grid,
    expert_baseline,
    literature_baseline,
    make_llm_log_predictor,
)

__all__ = [
    "AutoTuner",
    "DataCard",
    "EpochMetrics",
    "HyperparameterSet",
    "ModelCard",
    "NANOGPT_DATA",
    "NANOGPT_MODEL",
    "NoisyLogPredictor",
    "ParsedLog",
    "TrainingCurve",
    "TrainingSurrogate",
    "TuningResult",
    "VIT_CIFAR_DATA",
    "VIT_MODEL",
    "default_candidate_grid",
    "expert_baseline",
    "literature_baseline",
    "make_llm_log_predictor",
    "parse_training_log",
    "render_training_log",
]
