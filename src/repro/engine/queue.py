"""Multi-cluster workflow queue (paper Appendix B.A).

Ant Group schedules workflows across several clusters with different
shapes (GPU-heavy, storage-distant, CPU-rich).  A workflow is queued
with a business priority and a user quota, then dequeued to the cluster
chosen by a weighted combination of:

(a) workflow priority, (b) cluster free CPU/memory capacity, (c) the
user's remaining CPU/memory quota, and (d) the user's remaining GPU
quota — the four properties the paper lists.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..k8s.cluster import Cluster
from ..k8s.resources import ResourceQuantity
from .spec import ExecutableWorkflow


class QuotaError(RuntimeError):
    """Raised when a submission exceeds the user's configured quota."""


@dataclass
class UserQuota:
    """Per-user resource quota tracked by the queue."""

    user: str
    cpu_limit: float
    memory_limit: int
    gpu_limit: int = 0
    cpu_used: float = 0.0
    memory_used: int = 0
    gpu_used: int = 0

    @staticmethod
    def _fraction(used: float, limit: float) -> float:
        # A zero limit means the user has no grant at all: 0 remaining.
        # (It used to read as 100% remaining — `1.0 - 0.0` — which made
        # placement scoring favour exactly the users who are exhausted.)
        if limit <= 0:
            return 0.0
        return max(0.0, 1.0 - used / limit)

    def remaining_fraction(self) -> Tuple[float, float]:
        """(cpu+mem fraction remaining, gpu fraction remaining)."""
        cpu_frac = self._fraction(self.cpu_used, self.cpu_limit)
        mem_frac = self._fraction(self.memory_used, self.memory_limit)
        gpu_frac = self._fraction(self.gpu_used, self.gpu_limit)
        return (cpu_frac + mem_frac) / 2.0, gpu_frac

    def can_charge(self, demand: ResourceQuantity) -> bool:
        return not (
            self.cpu_used + demand.cpu > self.cpu_limit
            or self.memory_used + demand.memory > self.memory_limit
            or self.gpu_used + demand.gpu > self.gpu_limit
        )

    def charge(self, demand: ResourceQuantity) -> None:
        if not self.can_charge(demand):
            raise QuotaError(f"user {self.user} quota exceeded by {demand}")
        self.cpu_used += demand.cpu
        self.memory_used += demand.memory
        self.gpu_used += demand.gpu

    def release(self, demand: ResourceQuantity) -> None:
        self.cpu_used = max(0.0, self.cpu_used - demand.cpu)
        self.memory_used = max(0, self.memory_used - demand.memory)
        self.gpu_used = max(0, self.gpu_used - demand.gpu)


@dataclass
class DeferredDequeue:
    """Signal that the head workflow cannot run *right now*.

    Returned by :meth:`MultiClusterQueue.dequeue` instead of silently
    dropping an over-quota workflow (the item used to be popped before
    ``charge()`` raised, so it vanished from the heap).  The item is
    handed back to the caller, who re-enqueues it once quota frees up.
    """

    item: "QueuedWorkflow"
    reason: str
    #: What blocked the dequeue: ``"quota"`` (the user's grant cannot
    #: absorb the demand right now) or ``"headroom"`` (no feasible
    #: cluster has admission capacity).  Preemption keys off this — only
    #: headroom blocks can be relieved by evicting running work.
    kind: str = "quota"


@dataclass
class QueuedWorkflow:
    workflow: ExecutableWorkflow
    user: str
    priority: int = 0
    #: Memoized :meth:`peak_demand` — placement passes call it once per
    #: candidate per pass, and steps are immutable after enqueue.
    _peak: Optional[ResourceQuantity] = field(
        default=None, repr=False, compare=False
    )

    def peak_demand(self) -> ResourceQuantity:
        """Upper bound of simultaneous demand: the sum of all steps."""
        if self._peak is None:
            total = ResourceQuantity()
            for step in self.workflow.steps.values():
                total = total + step.requests
            self._peak = total
        return self._peak


@dataclass
class MultiClusterQueue:
    """Priority queue placing workflows on the best-scoring cluster.

    The placement score for (workflow, cluster) combines the paper's
    four factors with configurable weights; higher is better.  GPU
    workflows are only placed on clusters with GPU capacity.
    """

    clusters: List[Cluster]
    quotas: Dict[str, UserQuota] = field(default_factory=dict)
    priority_weight: float = 1.0
    capacity_weight: float = 2.0
    user_quota_weight: float = 1.0
    gpu_quota_weight: float = 1.0
    #: Keep CPU-only work off accelerator clusters whenever some
    #: CPU-only cluster could host it.  GPU nodes are the scarce,
    #: expensive resource (the paper's Ant clusters hold them apart);
    #: without this, placement scoring happily fills GPU clusters with
    #: CPU filler and the next GPU workflow queues behind it.  Off by
    #: default: the legacy score considered every cluster.
    protect_gpu: bool = False
    _heap: List[tuple] = field(default_factory=list)
    _seq: "itertools.count" = field(default_factory=itertools.count)
    #: Demand already placed on each cluster but possibly not yet
    #: running (queued pods).  Scoring counts it against free capacity,
    #: so a burst of placements spreads instead of piling onto whichever
    #: cluster looked freest at the first pop.
    _reserved: Dict[str, ResourceQuantity] = field(default_factory=dict)
    #: Memoized admission headroom per cluster, invalidated whenever
    #: that cluster's reservation changes.  Entries carry the node
    #: count they were computed at so a grown cluster recomputes.
    _headroom_cache: Dict[str, Tuple[int, ResourceQuantity]] = field(
        default_factory=dict, repr=False, compare=False
    )
    #: Which cluster each placed workflow reserved (for release()).
    _placements: Dict[str, str] = field(default_factory=dict)
    #: Times a release would have driven a reservation negative (a
    #: double-release or lost-placement symptom; clamped, but flagged).
    reservation_underflows: int = 0

    def enqueue(self, item: QueuedWorkflow) -> None:
        # Negative priority: heapq is a min-heap, higher priority first.
        heapq.heappush(self._heap, (-item.priority, next(self._seq), item))

    def __len__(self) -> int:
        return len(self._heap)

    def _quota_for(self, user: str) -> UserQuota:
        """Mutating accessor for the *charge* paths: installs the
        effectively-unbounded default quota so usage is tracked."""
        if user not in self.quotas:
            self.quotas[user] = UserQuota(
                user=user, cpu_limit=1e9, memory_limit=10**18, gpu_limit=10**6
            )
        return self.quotas[user]

    def _quota_view(self, user: str) -> UserQuota:
        """Read-only quota lookup for scoring.

        Scoring must not mutate quota state: installing the unbounded
        default as a side effect of merely *scoring* a user meant a
        later explicit ``quotas[user] = ...`` setup silently replaced an
        object the queue was already accounting against.
        """
        quota = self.quotas.get(user)
        if quota is not None:
            return quota
        return UserQuota(
            user=user, cpu_limit=1e9, memory_limit=10**18, gpu_limit=10**6
        )

    @staticmethod
    def _clamped_fraction(free: float, capacity: float) -> float:
        """Free-capacity fraction, clamped to [0, 1].

        An over-reserved cluster (``require_capacity=False`` lets the
        operator wait queues absorb overflow) has negative free
        capacity; un-clamped it produced *negative* fractions whose
        magnitude grew with how overcommitted the cluster was, skewing
        the weighted score instead of simply reading "full".
        """
        if not capacity:
            return 0.0
        return min(1.0, max(0.0, free / capacity))

    def _cpu_only_cluster_fits(self, demand: ResourceQuantity) -> bool:
        return any(
            cluster.capacity.gpu == 0 and demand.fits_within(cluster.capacity)
            for cluster in self.clusters
        )

    def _score(self, item: QueuedWorkflow, cluster: Cluster) -> Optional[float]:
        demand = item.peak_demand()
        needs_gpu = demand.gpu > 0
        capacity = cluster.capacity
        if needs_gpu and capacity.gpu == 0:
            return None
        if (
            self.protect_gpu
            and not needs_gpu
            and capacity.gpu > 0
            and self._cpu_only_cluster_fits(demand)
        ):
            return None
        reserved = self._reserved.get(cluster.name, ResourceQuantity())
        free = capacity - cluster.allocated - reserved
        cpu_frac = self._clamped_fraction(free.cpu, capacity.cpu)
        mem_frac = self._clamped_fraction(free.memory, capacity.memory)
        quota = self._quota_view(item.user)
        user_frac, gpu_frac = quota.remaining_fraction()
        return (
            self.priority_weight * item.priority
            + self.capacity_weight * (cpu_frac + mem_frac) / 2.0
            + self.user_quota_weight * user_frac
            + self.gpu_quota_weight * (gpu_frac if needs_gpu else 0.0)
        )

    def _admission_headroom(self, cluster: Cluster) -> ResourceQuantity:
        """Capacity left for new placements at the admission level.

        Deliberately measured against the cluster's *total* capacity
        minus this queue's own reservations — not the operator's live
        step allocations, which rise and fall with every step.  Workflow
        completions are the only events that free this headroom, so an
        admission controller gating on it never misses a wakeup.

        Memoized per cluster between reservation changes: placement
        passes and parked-candidate wake filters read it once per
        candidate, and the reservation only moves on place/release.
        """
        cached = self._headroom_cache.get(cluster.name)
        if cached is not None and cached[0] == len(cluster.nodes):
            return cached[1]
        reserved = self._reserved.get(cluster.name, ResourceQuantity())
        headroom = cluster.capacity - reserved
        self._headroom_cache[cluster.name] = (len(cluster.nodes), headroom)
        return headroom

    def try_place(
        self, item: QueuedWorkflow, require_capacity: bool = False
    ) -> Union[DeferredDequeue, Tuple[QueuedWorkflow, Cluster]]:
        """Quota-charge ``item`` and pick its cluster, without the heap.

        The placement half of :meth:`dequeue`, exposed so an
        event-driven admission pipeline can order candidates itself
        (e.g. with priority aging) and still share this queue's quota
        accounting, reservations and scoring.  Returns a
        :class:`DeferredDequeue` when the user's quota cannot absorb the
        item's peak demand right now, or — with ``require_capacity`` —
        when no feasible cluster has admission headroom for it.  Raises
        :class:`QuotaError` for permanent infeasibility (a GPU workflow
        with no GPU cluster attached).  On success the quota is charged
        and the chosen cluster's reservation recorded; call
        :meth:`release` when the workflow finishes.
        """
        demand = item.peak_demand()
        quota = self._quota_for(item.user)
        if not quota.can_charge(demand):
            return DeferredDequeue(
                item=item,
                reason=f"user {item.user} quota cannot absorb {demand}",
                kind="quota",
            )
        scored = [
            (score, cluster)
            for cluster in self.clusters
            if (score := self._score(item, cluster)) is not None
        ]
        if not scored:
            raise QuotaError(
                f"workflow {item.workflow.name}: no cluster can host its demand"
            )
        if require_capacity:
            scored = [
                (score, cluster)
                for score, cluster in scored
                if demand.fits_within(self._admission_headroom(cluster))
            ]
            if not scored:
                return DeferredDequeue(
                    item=item,
                    reason=f"no cluster has admission headroom for {demand}",
                    kind="headroom",
                )
        scored.sort(key=lambda pair: (-pair[0], pair[1].name))
        best_cluster = scored[0][1]
        quota.charge(demand)
        current = self._reserved.get(best_cluster.name, ResourceQuantity())
        self._reserved[best_cluster.name] = current + demand
        self._headroom_cache.pop(best_cluster.name, None)
        self._placements[item.workflow.name] = best_cluster.name
        return item, best_cluster

    def dequeue(self) -> Union[None, DeferredDequeue, Tuple[QueuedWorkflow, Cluster]]:
        """Pop the highest-priority workflow and pick its cluster.

        Returns ``None`` when the queue is empty, or a
        :class:`DeferredDequeue` carrying the item when the user's quota
        cannot absorb its peak demand right now — the workflow is handed
        back instead of lost, and the caller re-enqueues it after quota
        frees up.  On success the user's quota is charged for the peak
        demand; call :meth:`release` when the workflow finishes.
        """
        if not self._heap:
            return None
        # Placement decided *before* the pop commits: an over-quota
        # workflow used to be popped first and then lost when charge()
        # raised.
        probe = self._heap[0][2]
        try:
            placed = self.try_place(probe)
        except QuotaError:
            # Permanent infeasibility (e.g. a GPU workflow with no GPU
            # cluster attached): surface it, but re-enqueue the item so
            # the queue never swallows a workflow.
            heapq.heappop(self._heap)
            self.enqueue(probe)
            raise
        heapq.heappop(self._heap)
        return placed

    def release(self, item: QueuedWorkflow) -> None:
        """Return the quota charge and reservation when it completes.

        Idempotent: releasing a workflow that holds no placement (double
        release, or one that was deferred and never charged) is a no-op
        — blindly refunding quota here would erase *other* workflows'
        legitimate charges.  A reservation that would go negative is
        clamped and counted in :attr:`reservation_underflows`.
        """
        cluster_name = self._placements.pop(item.workflow.name, None)
        if cluster_name is None:
            return
        demand = item.peak_demand()
        quota = self.quotas.get(item.user)
        if quota is not None:
            # A placement always charged via _quota_for, so the quota
            # exists; guarded anyway so release never installs one.
            quota.release(demand)
        current = self._reserved.get(cluster_name, ResourceQuantity())
        if (
            demand.cpu > current.cpu + 1e-9
            or demand.memory > current.memory
            or demand.gpu > current.gpu
        ):
            # Accounting drift: more released than was ever reserved.
            self.reservation_underflows += 1
        self._reserved[cluster_name] = current - demand  # subtraction clamps at 0
        self._headroom_cache.pop(cluster_name, None)

    def tenant_usage(self, user: str) -> Tuple[float, int, int]:
        """Currently charged ``(cpu, memory, gpu)`` for one tenant.

        The live usage feed for fairness shares: exactly what this
        queue's quota accounting has charged and not yet released.
        """
        quota = self.quotas.get(user)
        if quota is None:
            return (0.0, 0, 0)
        return (quota.cpu_used, quota.memory_used, quota.gpu_used)

    def fleet_capacity(self) -> ResourceQuantity:
        """Total capacity across all attached clusters."""
        total = ResourceQuantity()
        for cluster in self.clusters:
            total = total + cluster.capacity
        return total

    def headroom(self, cluster: Cluster) -> ResourceQuantity:
        """Public admission-headroom view (capacity minus reservations)."""
        return self._admission_headroom(cluster)

    def requeue(self, item: QueuedWorkflow) -> None:
        """Re-place a displaced workflow (its cluster died mid-run).

        Releases the old charge/reservation and puts the workflow back
        in priority order for a fresh placement decision.
        """
        self.release(item)
        self.enqueue(item)

    def balance_report(self) -> Dict[str, float]:
        """CPU-allocation fraction per cluster (load-balance check)."""
        out = {}
        for cluster in self.clusters:
            capacity = cluster.capacity
            out[cluster.name] = (
                cluster.allocated.cpu / capacity.cpu if capacity.cpu else 0.0
            )
        return out
