"""Interface between the workflow engine and the caching layer.

The engine is deliberately ignorant of caching policy: on every input
artifact it asks a :class:`CacheManagerProtocol` how long the fetch takes
(and whether it was a hit), and on every produced artifact it offers the
artifact to the manager.  ``repro.caching.manager`` provides the real
implementation wired to Algorithm 2; :class:`NullCacheManager` here is
the "No caching" baseline where every read goes to remote storage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Tuple

from .spec import ArtifactSpec, ExecutableWorkflow


@dataclass(frozen=True)
class BandwidthModel:
    """Read bandwidths for the simulated storage tiers (bytes/second).

    ``remote_bw`` models reads from the storage cluster (ODPS/OSS/NAS in
    the paper); ``local_bw`` models reads from the in-memory cache
    (Alluxio).  Appendix D.C reports local caching speeds reads up by
    2–4×+, which these defaults reproduce.
    """

    remote_bw: float = 100e6
    local_bw: float = 1e9
    #: Fixed per-read latency (connection setup, metadata lookups).
    remote_latency_s: float = 2.0
    local_latency_s: float = 0.05

    def remote_seconds(self, size_bytes: int, distance: float = 1.0) -> float:
        return self.remote_latency_s * distance + size_bytes / (self.remote_bw / distance)

    def local_seconds(self, size_bytes: int) -> float:
        return self.local_latency_s + size_bytes / self.local_bw


class CacheManagerProtocol(Protocol):
    """What the operator needs from a caching layer."""

    def register_workflow(self, workflow: ExecutableWorkflow) -> None:
        """Give the manager the DAG so it can score artifacts (Eqs. 3–4)."""
        ...

    def fetch(self, artifact: ArtifactSpec, now: float = 0.0) -> Tuple[float, bool]:
        """Return ``(seconds, hit)`` for reading one input artifact.

        ``now`` is the virtual time of the read; recency-based policies
        (LRU) use it to maintain access order.
        """
        ...

    def on_artifact_produced(self, artifact: ArtifactSpec, now: float) -> None:
        """Offer a freshly produced artifact for caching.

        The real manager routes this through the policy's
        ``decide(CacheDecision)`` entry point (see
        :mod:`repro.caching.policy`).
        """
        ...

    def contains(self, uid: str) -> bool:
        """Is this artifact currently resident?  Drives the operator's
        cached-step-skip optimization."""
        ...

    def on_step_finished(self, node_key: str) -> None:
        """A step completed; its reads are past usage for F(u)."""
        ...


class NullCacheManager:
    """The "No" strategy: nothing is ever cached."""

    def __init__(self, bandwidth: BandwidthModel | None = None, distance: float = 1.0):
        self.bandwidth = bandwidth or BandwidthModel()
        self.distance = distance

    def register_workflow(self, workflow: ExecutableWorkflow) -> None:
        return None

    def fetch(self, artifact: ArtifactSpec, now: float = 0.0) -> Tuple[float, bool]:
        return self.bandwidth.remote_seconds(artifact.size_bytes, self.distance), False

    def on_artifact_produced(self, artifact: ArtifactSpec, now: float) -> None:
        return None

    def contains(self, uid: str) -> bool:
        return False

    def on_step_finished(self, node_key: str) -> None:
        return None
