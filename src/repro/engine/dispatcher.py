"""Multi-cluster dispatch: queue + per-cluster operators (Appendix B.A).

Ties the :class:`~repro.engine.queue.MultiClusterQueue` to live
per-cluster operators on one shared clock: workflows are enqueued with a
priority and an owner, popped in weighted order, placed on the
best-scoring cluster, executed there, and their quota charge released on
completion.  This is the component that "guarantees each cluster shares
a similar capacity and avoids one cluster being overflow[ed]".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..k8s.cluster import Cluster
from .operator import WorkflowOperator
from .queue import DeferredDequeue, MultiClusterQueue, QueuedWorkflow, UserQuota
from .simclock import SimClock
from .spec import ExecutableWorkflow
from .status import WorkflowRecord


@dataclass
class DispatchResult:
    """Where a workflow landed and how it went."""

    workflow_name: str
    cluster_name: str
    record: WorkflowRecord


class MultiClusterDispatcher:
    """Drains a workflow queue onto per-cluster operators."""

    def __init__(
        self,
        clusters: List[Cluster],
        quotas: Optional[Dict[str, UserQuota]] = None,
        seed: int = 0,
    ) -> None:
        if not clusters:
            raise ValueError("dispatcher needs at least one cluster")
        self.clock = SimClock()
        self.queue = MultiClusterQueue(clusters=clusters, quotas=dict(quotas or {}))
        self.operators: Dict[str, WorkflowOperator] = {
            cluster.name: WorkflowOperator(self.clock, cluster, seed=seed)
            for cluster in clusters
        }
        self.results: List[DispatchResult] = []
        #: Workflows whose owners stayed over quota with nothing left
        #: running to free it — kept, not silently dropped.
        self.deferred: List[QueuedWorkflow] = []

    def enqueue(
        self, workflow: ExecutableWorkflow, user: str = "default", priority: int = 0
    ) -> None:
        self.queue.enqueue(QueuedWorkflow(workflow=workflow, user=user, priority=priority))

    def dispatch_all(self) -> List[DispatchResult]:
        """Pop every queued workflow onto its cluster, then run them all.

        Placement happens up front in priority order (each pop sees the
        cluster loads left by earlier placements, so load spreads);
        execution then proceeds concurrently on the shared clock.
        Workflows deferred for quota are retried in rounds: each round
        of completions releases quota, so a deferred workflow runs as
        soon as its owner is back under limit.  Workflows still deferred
        when no quota will ever free accumulate in :attr:`deferred`
        instead of being dropped.
        """
        all_placed: List[tuple] = []
        while True:
            placed_this_round: List[tuple] = []
            deferred_round: List[QueuedWorkflow] = []
            while True:
                popped = self.queue.dequeue()
                if popped is None:
                    break
                if isinstance(popped, DeferredDequeue):
                    deferred_round.append(popped.item)
                    continue
                item, cluster = popped
                operator = self.operators[cluster.name]
                record = operator.submit(
                    item.workflow,
                    on_complete=lambda _rec, queued=item: self.queue.release(queued),
                )
                placed_this_round.append((item, cluster, record))
            self.clock.run()
            all_placed.extend(placed_this_round)
            if not deferred_round:
                break
            if not placed_this_round:
                # Nothing ran, so no quota was released: these can never
                # proceed.  Surface them rather than spinning.
                self.deferred.extend(deferred_round)
                break
            for item in deferred_round:
                self.queue.enqueue(item)
        batch = [
            DispatchResult(
                workflow_name=item.workflow.name,
                cluster_name=cluster.name,
                record=record,
            )
            for item, cluster, record in all_placed
        ]
        self.results.extend(batch)
        return batch

    def placements(self) -> Dict[str, int]:
        """Workflow counts per cluster (load-balance evidence)."""
        counts: Dict[str, int] = {name: 0 for name in self.operators}
        for result in self.results:
            counts[result.cluster_name] += 1
        return counts
