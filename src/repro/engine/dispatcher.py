"""Multi-cluster batch dispatch — compat facade over the online pipeline.

Historically this module owned the scheduling loop: place everything up
front, run the clock to quiescence, retry quota-deferred work in coarse
rounds.  That loop is gone — scheduling now lives in the event-driven
:class:`~repro.engine.admission.AdmissionPipeline`, where placement is
triggered incrementally by arrival and completion events.

:class:`MultiClusterDispatcher` remains as the stable batch API: it
preserves the legacy contract (same placements and records on batch
workloads) by submitting every enqueued workflow as a simultaneous
arrival with aging disabled and no admission capacity gate, so the
aged-priority placement pass degenerates to exactly the old
priority-ordered sweep — while quota-deferred work now re-places on
each completion event instead of waiting for a global round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..k8s.cluster import Cluster
from .admission import AdmissionPipeline, AdmissionRecord
from .queue import QueuedWorkflow, UserQuota
from .spec import ExecutableWorkflow
from .status import WorkflowRecord


@dataclass
class DispatchResult:
    """Where a workflow landed and how it went."""

    workflow_name: str
    cluster_name: str
    record: WorkflowRecord


class MultiClusterDispatcher:
    """Batch-submits a workflow fleet through the admission pipeline."""

    def __init__(
        self,
        clusters: List[Cluster],
        quotas: Optional[Dict[str, UserQuota]] = None,
        seed: int = 0,
        fairness: str = "strict-priority",
        tenant_weights: Optional[Dict[str, float]] = None,
    ) -> None:
        if not clusters:
            raise ValueError("dispatcher needs at least one cluster")
        # Legacy-equivalent knobs: no aging (batch priority order is the
        # contract), no admission capacity gate (operator wait queues
        # absorb overflow, as the batch path always did), no queue bound.
        # Fairness stays strict-priority unless the caller opts in —
        # batch replays are contractually ordered by priority.
        self.pipeline = AdmissionPipeline(
            clusters,
            quotas=quotas,
            seed=seed,
            aging_rate=0.0,
            require_capacity=False,
            max_pending=None,
            fairness=fairness,
            tenant_weights=tenant_weights,
        )
        self.clock = self.pipeline.clock
        self.queue = self.pipeline.queue
        self.operators = self.pipeline.operators
        self.results: List[DispatchResult] = []
        #: Workflows whose owners stayed over quota with nothing left
        #: running to free it — kept, not silently dropped.
        self.deferred: List[QueuedWorkflow] = []
        self._batch: List[tuple] = []

    def enqueue(
        self, workflow: ExecutableWorkflow, user: str = "default", priority: int = 0
    ) -> None:
        self._batch.append((workflow, user, priority))

    def dispatch_all(self) -> List[DispatchResult]:
        """Submit every enqueued workflow as a simultaneous arrival and
        run the pipeline until the batch settles.

        All arrivals land at the current virtual time; the pipeline's
        coalesced placement pass then places them in priority order
        (each placement sees the reservations left by earlier ones, so
        load spreads), and quota-deferred workflows re-place as soon as
        a completion frees their owner's quota.  Workflows still
        deferred once the clock drains — no quota will ever free —
        accumulate in :attr:`deferred` instead of being dropped.
        """
        placed_before = len(self.pipeline.placed)
        for workflow, user, priority in self._batch:
            self.pipeline.submit(workflow, user=user, priority=priority)
        self._batch.clear()
        self.pipeline.run()
        self.deferred.extend(self.pipeline.cancel_pending())
        batch = [
            DispatchResult(
                workflow_name=admission.workflow_name,
                cluster_name=admission.cluster_name,
                record=admission.record,
            )
            for admission in self.pipeline.placed[placed_before:]
        ]
        self.results.extend(batch)
        return batch

    def admission_records(self) -> List[AdmissionRecord]:
        """Per-submission admission lifecycles (arrival/queue/placement)."""
        return list(self.pipeline.records)

    def placements(self) -> Dict[str, int]:
        """Workflow counts per cluster (load-balance evidence)."""
        counts: Dict[str, int] = {name: 0 for name in self.operators}
        for result in self.results:
            counts[result.cluster_name] += 1
        return counts
