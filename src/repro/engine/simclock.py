"""Discrete-event simulation clock.

All engine-side time (pod start/finish, data fetches, utilization
sampling) advances through one :class:`SimClock`.  Events are callbacks
ordered by ``(time, sequence)`` so simultaneous events fire in
scheduling order, which keeps every simulation run deterministic for a
fixed seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised on clock misuse (e.g. scheduling in the past)."""


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`SimClock.schedule`; allows cancellation."""

    def __init__(self, event: _Event) -> None:
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def time(self) -> float:
        return self._event.time


class SimClock:
    """A heap-ordered event loop with virtual time in seconds."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[_Event] = []
        self._seq = itertools.count()

    @property
    def now(self) -> float:
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = _Event(time=self._now + delay, seq=next(self._seq), callback=callback)
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def schedule_at(self, when: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute virtual time ``when``."""
        return self.schedule(when - self._now, callback)

    def step(self) -> bool:
        """Fire the next pending event; returns False when none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Run events until the heap drains or virtual time passes ``until``.

        ``max_events`` is a runaway-loop backstop; exceeding it raises
        :class:`SimulationError` rather than hanging the caller.
        """
        fired = 0
        while self._heap:
            if until is not None and self._peek_time() > until:
                self._now = until
                break
            if not self.step():
                break
            fired += 1
            if fired > max_events:
                raise SimulationError(f"exceeded {max_events} events; likely a loop")
        if until is not None and self._now < until and not self._heap:
            self._now = until
        return self._now

    def _peek_time(self) -> float:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else float("inf")

    def pending(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)
