"""Discrete-event simulation clock.

All engine-side time (pod start/finish, data fetches, utilization
sampling) advances through one :class:`SimClock`.  Events are callbacks
ordered by ``(time, sequence)`` so simultaneous events fire in
scheduling order, which keeps every simulation run deterministic for a
fixed seed.

Events come in two flavours: regular events drive the simulation, while
*daemon* events (periodic samplers, observability ticks) piggyback on
it — when only daemon events remain and no ``until`` horizon was given,
:meth:`SimClock.run` stops instead of letting a self-re-arming sampler
spin the loop forever.  Daemon events already *due* at the drain
boundary still fire before :meth:`SimClock.run` returns, so a sampler
whose interval lands exactly on the makespan is not silently dropped,
and a daemon registered against an already-drained clock fires on the
next ``run()`` instead of never.

Hot-path layout: at 100k-workflow fleets the clock processes tens of
millions of events, so event records are ``__slots__`` objects pooled
on a free list (generation counters let outstanding
:class:`EventHandle` objects survive recycling), heap entries are bare
``(time, seq, record)`` tuples (no dataclass ``__lt__`` per
comparison), and :meth:`pending` is O(1) bookkeeping instead of a heap
scan.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised on clock misuse (e.g. scheduling in the past)."""


class _Event:
    """Pooled event record.

    ``gen`` increments every time the record is recycled onto the free
    list; handles capture the generation they were issued for, so a
    handle whose record was reused can still answer ``fired`` /
    ``cancelled`` correctly (a recycled record means its event fired —
    cancelled records are never pooled while a handle could observe
    them).
    """

    __slots__ = ("time", "seq", "callback", "daemon", "cancelled", "fired", "gen")

    def __init__(self) -> None:
        self.time = 0.0
        self.seq = 0
        self.callback: Optional[Callable[[], None]] = None
        self.daemon = False
        self.cancelled = False
        self.fired = False
        self.gen = 0


class EventHandle:
    """Handle returned by :meth:`SimClock.schedule`; allows cancellation."""

    __slots__ = ("_event", "_gen", "_time", "_clock")

    def __init__(self, event: _Event, clock: "SimClock") -> None:
        self._event = event
        self._gen = event.gen
        self._time = event.time
        self._clock = clock

    def cancel(self) -> None:
        # Cancelling an event that already ran (or was already cancelled)
        # must be a no-op — a second live-count decrement here would make
        # the run loop believe work drained while events still pend.  A
        # recycled record (generation mismatch) means the event fired.
        event = self._event
        if event.gen != self._gen or event.cancelled or event.fired:
            return
        event.cancelled = True
        clock = self._clock
        clock._cancelled_in_heap += 1
        if not event.daemon:
            clock._live -= 1

    @property
    def cancelled(self) -> bool:
        event = self._event
        return event.gen == self._gen and event.cancelled

    @property
    def fired(self) -> bool:
        event = self._event
        if event.gen != self._gen:
            return True
        return event.fired

    @property
    def time(self) -> float:
        return self._time


#: Free-list bound — enough to absorb the engine's steady-state event
#: churn without hoarding memory after a burst.
_POOL_LIMIT = 4096


class SimClock:
    """A heap-ordered event loop with virtual time in seconds."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[Tuple[float, int, _Event]] = []
        self._seq = 0
        #: Count of pending non-daemon, non-cancelled events; the run
        #: loop keeps going only while work (not just sampling) remains.
        self._live = 0
        #: Cancelled entries still sitting in the heap (lazily purged).
        self._cancelled_in_heap = 0
        self._pool: List[_Event] = []

    @property
    def now(self) -> float:
        return self._now

    def schedule(
        self, delay: float, callback: Callable[[], None], daemon: bool = False
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        ``daemon=True`` marks a background event (e.g. a utilization
        sample) that should not, by itself, keep :meth:`run` alive.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        pool = self._pool
        event = pool.pop() if pool else _Event()
        event.time = self._now + delay
        event.seq = self._seq
        self._seq += 1
        event.callback = callback
        event.daemon = daemon
        event.cancelled = False
        event.fired = False
        heapq.heappush(self._heap, (event.time, event.seq, event))
        if not daemon:
            self._live += 1
        return EventHandle(event, self)

    def schedule_at(
        self, when: float, callback: Callable[[], None], daemon: bool = False
    ) -> EventHandle:
        """Schedule ``callback`` at absolute virtual time ``when``."""
        return self.schedule(when - self._now, callback, daemon=daemon)

    def step(self) -> bool:
        """Fire the next pending event; returns False when none remain."""
        heap = self._heap
        while heap:
            time_, _seq, event = heapq.heappop(heap)
            if event.cancelled:
                # Cancelled records are left for the GC rather than
                # pooled: a live handle may still inspect their flags.
                self._cancelled_in_heap -= 1
                continue
            if not event.daemon:
                self._live -= 1
            event.fired = True
            self._now = time_
            callback = event.callback
            if len(self._pool) < _POOL_LIMIT:
                # Recycle before invoking: the callback may schedule new
                # events and reuse this record immediately.  Handles see
                # the generation bump and report fired=True.
                event.gen += 1
                event.callback = None
                self._pool.append(event)
            callback()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Run events until the work drains or virtual time passes ``until``.

        Without ``until``, the loop stops once only daemon events (if
        any) remain — a periodic sampler cannot spin the simulation
        forever.  Daemon events *due at the drain boundary* (their time
        is not after the final work event's) still fire before the loop
        stops; if one of them schedules fresh work, the loop resumes.
        With ``until``, daemon events fire up to the horizon, which is
        what utilization sampling over a fixed window wants.

        ``max_events`` is a runaway-loop backstop; exceeding it raises
        :class:`SimulationError` rather than hanging the caller.
        """
        fired = 0
        while self._heap:
            if until is None and self._live <= 0:
                # Work has drained.  Fire daemon events already due at
                # the boundary (head time <= now) — a sampler tick that
                # lands exactly on the makespan must not depend on heap
                # insertion order, and a daemon registered after a
                # previous drain must fire on this run, not never.
                if self._peek_time() > self._now:
                    break
                if not self.step():
                    break
            elif until is not None and self._peek_time() > until:
                self._now = until
                break
            elif not self.step():
                break
            fired += 1
            if fired > max_events:
                raise SimulationError(f"exceeded {max_events} events; likely a loop")
        if until is not None and self._now < until and not self._heap:
            self._now = until
        return self._now

    def _peek_time(self) -> float:
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
            self._cancelled_in_heap -= 1
        return heap[0][0] if heap else float("inf")

    def pending(self) -> int:
        return len(self._heap) - self._cancelled_in_heap

    def pending_work(self) -> int:
        """Pending non-daemon events (what keeps :meth:`run` alive)."""
        return self._live
