"""Discrete-event simulation clock.

All engine-side time (pod start/finish, data fetches, utilization
sampling) advances through one :class:`SimClock`.  Events are callbacks
ordered by ``(time, sequence)`` so simultaneous events fire in
scheduling order, which keeps every simulation run deterministic for a
fixed seed.

Events come in two flavours: regular events drive the simulation, while
*daemon* events (periodic samplers, observability ticks) piggyback on
it — when only daemon events remain and no ``until`` horizon was given,
:meth:`SimClock.run` stops instead of letting a self-re-arming sampler
spin the loop forever.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional


class SimulationError(RuntimeError):
    """Raised on clock misuse (e.g. scheduling in the past)."""


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    daemon: bool = field(default=False, compare=False)
    fired: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`SimClock.schedule`; allows cancellation."""

    def __init__(self, event: _Event, clock: "SimClock") -> None:
        self._event = event
        self._clock = clock

    def cancel(self) -> None:
        # Cancelling an event that already ran (or was already cancelled)
        # must be a no-op — a second live-count decrement here would make
        # the run loop believe work drained while events still pend.
        if self._event.cancelled or self._event.fired:
            return
        self._event.cancelled = True
        if not self._event.daemon:
            self._clock._live -= 1

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def fired(self) -> bool:
        return self._event.fired

    @property
    def time(self) -> float:
        return self._event.time


class SimClock:
    """A heap-ordered event loop with virtual time in seconds."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[_Event] = []
        self._seq = itertools.count()
        #: Count of pending non-daemon, non-cancelled events; the run
        #: loop keeps going only while work (not just sampling) remains.
        self._live = 0

    @property
    def now(self) -> float:
        return self._now

    def schedule(
        self, delay: float, callback: Callable[[], None], daemon: bool = False
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        ``daemon=True`` marks a background event (e.g. a utilization
        sample) that should not, by itself, keep :meth:`run` alive.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = _Event(
            time=self._now + delay,
            seq=next(self._seq),
            callback=callback,
            daemon=daemon,
        )
        heapq.heappush(self._heap, event)
        if not daemon:
            self._live += 1
        return EventHandle(event, self)

    def schedule_at(
        self, when: float, callback: Callable[[], None], daemon: bool = False
    ) -> EventHandle:
        """Schedule ``callback`` at absolute virtual time ``when``."""
        return self.schedule(when - self._now, callback, daemon=daemon)

    def step(self) -> bool:
        """Fire the next pending event; returns False when none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if not event.daemon:
                self._live -= 1
            event.fired = True
            self._now = event.time
            event.callback()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Run events until the work drains or virtual time passes ``until``.

        Without ``until``, the loop stops once only daemon events (if
        any) remain — a periodic sampler cannot spin the simulation
        forever.  With ``until``, daemon events fire up to the horizon,
        which is what utilization sampling over a fixed window wants.

        ``max_events`` is a runaway-loop backstop; exceeding it raises
        :class:`SimulationError` rather than hanging the caller.
        """
        fired = 0
        while self._heap:
            if until is None and self._live <= 0:
                break
            if until is not None and self._peek_time() > until:
                self._now = until
                break
            if not self.step():
                break
            fired += 1
            if fired > max_events:
                raise SimulationError(f"exceeded {max_events} events; likely a loop")
        if until is not None and self._now < until and not self._heap:
            self._now = until
        return self._now

    def _peek_time(self) -> float:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else float("inf")

    def pending(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def pending_work(self) -> int:
        """Pending non-daemon events (what keeps :meth:`run` alive)."""
        return self._live
