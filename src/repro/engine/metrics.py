"""Utilization sampling for the evaluation figures.

Figures 7 and 11–16 plot CPU/GPU utilization over time per caching
strategy.  :class:`UtilizationRecorder` samples a cluster at a fixed
virtual-time interval while a simulation runs and exposes the resulting
series plus summary statistics.

Samples are scheduled as *daemon* events: an active recorder never
keeps :meth:`SimClock.run` spinning on its own, and :meth:`stop`
cancels the pending sample instead of leaving it armed in the heap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..k8s.cluster import Cluster
from .simclock import EventHandle, SimClock


@dataclass
class UtilizationSample:
    time: float
    cpu: float
    memory: float
    gpu: float
    running_pods: int


@dataclass
class UtilizationRecorder:
    """Periodic sampler of a cluster's utilization.

    Call :meth:`start` before running the clock; sampling re-arms itself
    until :meth:`stop` is called or the clock drains.  ``start`` on an
    already-active recorder is a no-op (the sampler never double-arms),
    and ``stop`` cancels the pending sample event so nothing leaks into
    the heap.
    """

    clock: SimClock
    cluster: Cluster
    interval_s: float = 30.0
    samples: List[UtilizationSample] = field(default_factory=list)
    _active: bool = False
    _handle: Optional[EventHandle] = field(default=None, repr=False)

    def start(self) -> None:
        if self._active:
            return
        self._active = True
        self._sample()

    def stop(self) -> None:
        self._active = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _sample(self) -> None:
        if not self._active:
            return
        util = self.cluster.utilization()
        self.samples.append(
            UtilizationSample(
                time=self.clock.now,
                cpu=util["cpu"],
                memory=util["memory"],
                gpu=util["gpu"],
                running_pods=len(self.cluster.running_pods()),
            )
        )
        self._handle = self.clock.schedule(self.interval_s, self._sample, daemon=True)

    # ------------------------------------------------------------ summaries

    def mean_cpu(self, until: Optional[float] = None) -> float:
        return self._mean("cpu", until)

    def mean_gpu(self, until: Optional[float] = None) -> float:
        return self._mean("gpu", until)

    def mean_memory(self, until: Optional[float] = None) -> float:
        return self._mean("memory", until)

    def _mean(self, attr: str, until: Optional[float]) -> float:
        values = [
            getattr(s, attr)
            for s in self.samples
            if until is None or s.time <= until
        ]
        return sum(values) / len(values) if values else 0.0

    def series(self, attr: str = "cpu") -> List[tuple]:
        """Return ``[(time, value), ...]`` for plotting."""
        return [(s.time, getattr(s, attr)) for s in self.samples]
