"""Failure patterns and retry policy (paper Appendix B.B).

Ant Group's production deployment catalogued "more than 20 abnormal
patterns" whose failures the workflow controller retries in place
(restarting the failed step, not the whole workflow).  This module
carries that catalogue, a backoff-limited :class:`RetryPolicy`, and a
seeded :class:`FailureInjector` that the operator consults on each step
attempt.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional

#: Retryable system-level error patterns.  The first two are named in the
#: paper; the remainder model the catalogue of transient cloud errors the
#: production controller absorbs.
RETRYABLE_PATTERNS = frozenset(
    {
        "ExceededQuotaErr",
        "TooManyRequestsErr",
        "PodEvictedErr",
        "ImagePullBackOffErr",
        "NodeNotReadyErr",
        "NetworkTimeoutErr",
        "VolumeMountErr",
        "OOMKilledTransientErr",
        "DNSResolutionErr",
        "RegistryThrottleErr",
        "APIServerTimeoutErr",
        "EtcdLeaderChangeErr",
        "SidecarInjectionErr",
        "ConfigMapSyncErr",
        "SecretSyncErr",
        "PVCPendingErr",
        "IPAllocationErr",
        "KubeletRestartErr",
        "ContainerCreateErr",
        "WebhookTimeoutErr",
        "QuotaSyncLagErr",
        "SchedulerPreemptedErr",
    }
)

#: Non-retryable (application-level) patterns: retrying cannot help.
FATAL_PATTERNS = frozenset(
    {
        "PodCrashErr",
        "InvalidImageErr",
        "PermissionDeniedErr",
        "DataCorruptionErr",
    }
)

#: Infrastructure faults: the cluster, not the step, is at fault.  These
#: are what the chaos layer injects (node loss, eviction/preemption,
#: cache-fetch outages, controller restarts) and they are retried on a
#: separate budget — an eviction storm must not exhaust a step's
#: application retry limit (``infra_retry`` path, see RetryPolicy).
INFRA_PATTERNS = frozenset(
    {
        "NodeLostErr",
        "PodEvictedErr",
        "SchedulerPreemptedErr",
        "CacheFetchTimeoutErr",
        "OperatorRestartErr",
        # A hard-killed engine replica lost the attempt: journal replay
        # settles it with this pattern (repro.engine.journal).
        "ReplicaLostErr",
    }
)


def is_retryable(pattern: str) -> bool:
    return pattern in RETRYABLE_PATTERNS or pattern in INFRA_PATTERNS


def is_infra(pattern: str) -> bool:
    return pattern in INFRA_PATTERNS


@dataclass
class RetryPolicy:
    """Backoff-limited retry decisions for failed step attempts.

    ``backoff_base`` and ``backoff_factor`` produce the delay before the
    next attempt: ``base * factor ** (attempt - 1)``, capped by
    ``backoff_cap``.  When the caller passes a seeded ``rng``, the delay
    is jittered by ``±jitter`` (fractionally) so steps that failed on
    the same tick don't retry in lockstep and hammer the scheduler at
    the same virtual instant.
    """

    limit: int = 3
    backoff_base: float = 10.0
    backoff_factor: float = 2.0
    backoff_cap: float = 300.0
    #: Fractional symmetric jitter applied when an ``rng`` is supplied.
    jitter: float = 0.1
    #: Separate budget for infrastructure faults (node loss, eviction,
    #: controller restart): generous, because none of them indicate the
    #: step itself is broken.
    infra_limit: int = 32
    #: Flat requeue delay after an infra fault — the work just needs to
    #: land elsewhere; exponential backoff would punish the victim.
    infra_backoff: float = 5.0

    def should_retry(
        self, pattern: str, attempts: int, limit_override: Optional[int] = None
    ) -> bool:
        """Decide whether a failed attempt should be retried in place.

        ``limit_override`` is a per-step retry budget (Argo's
        ``retryStrategy.limit``); None uses the policy's global limit.
        ``attempts`` must count application attempts only — callers
        subtract the infra interruptions recorded on the step, so that
        a displaced pod never burns the step's own retry budget.
        """
        effective_limit = self.limit if limit_override is None else limit_override
        return is_retryable(pattern) and attempts <= effective_limit

    def is_infra(self, pattern: str) -> bool:
        return is_infra(pattern)

    def infra_retry(self, pattern: str, infra_failures: int) -> bool:
        """The infra path: requeue displaced work on its own budget."""
        return is_infra(pattern) and infra_failures <= self.infra_limit

    def backoff(self, attempts: int, rng: Optional[random.Random] = None) -> float:
        """Delay before the next attempt.

        Without ``rng`` the delay is the exact capped exponential (the
        deterministic value unit tests and capacity planning reason
        about); with a seeded ``rng`` the delay is spread uniformly over
        ``[1 - jitter, 1 + jitter]`` of that value.
        """
        delay = self.backoff_base * (self.backoff_factor ** max(0, attempts - 1))
        delay = min(delay, self.backoff_cap)
        if rng is not None and self.jitter > 0.0:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, delay)


@dataclass
class FailureInjector:
    """Seeded per-attempt failure sampling.

    Each step attempt fails with the step's configured ``failure.rate``;
    on failure a pattern is drawn: with probability
    ``retryable_fraction`` a retryable system pattern, otherwise the
    step's own (usually fatal) pattern.
    """

    seed: int = 0
    retryable_fraction: float = 0.8
    _rng: random.Random = field(init=False, repr=False)
    injected: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def sample(self, step_name: str, rate: float, own_pattern: str) -> Optional[str]:
        """Return a failure pattern for this attempt, or None for success."""
        if rate <= 0.0:
            return None
        if self._rng.random() >= rate:
            return None
        if self._rng.random() < self.retryable_fraction:
            pattern = self._rng.choice(sorted(RETRYABLE_PATTERNS))
        else:
            pattern = own_pattern
        self.injected[pattern] = self.injected.get(pattern, 0) + 1
        return pattern
