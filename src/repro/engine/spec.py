"""Executable workflow model consumed by the simulated operator.

The operator does not execute Couler IR directly — faithful to the
paper's architecture, the IR is compiled by a backend (``repro.backends``)
into an engine manifest (an Argo ``Workflow`` CRD), and the operator
parses that manifest back into the :class:`ExecutableWorkflow` model in
this module.  Simulation quantities (step duration, artifact sizes,
failure profile) travel as ``sim/*`` annotations on the manifest, the way
a production operator consumes scheduling hints.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..k8s.resources import ResourceQuantity


class SpecError(ValueError):
    """Raised for malformed executable workflow specs."""


@dataclass(frozen=True)
class ArtifactSpec:
    """A produced/consumed artifact with its storage footprint.

    ``uid`` must be globally unique within a simulation (conventionally
    ``<workflow>/<step>/<name>``); the caching layer keys on it.
    """

    uid: str
    size_bytes: int
    kind: str = "data"

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise SpecError(f"artifact {self.uid}: negative size")


@dataclass
class FailureProfile:
    """Probability of a step attempt failing, and with which pattern."""

    rate: float = 0.0
    pattern: str = "PodCrashErr"

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise SpecError(f"failure rate must be in [0,1]: {self.rate}")


@dataclass
class ExecutableStep:
    """One schedulable step of a workflow."""

    name: str
    duration_s: float
    requests: ResourceQuantity = field(default_factory=ResourceQuantity)
    dependencies: List[str] = field(default_factory=list)
    #: Artifacts this step reads.  Inputs produced by an upstream step
    #: share that step's output uid; inputs with no producer model raw
    #: external data (tables / files in remote storage).
    inputs: List[ArtifactSpec] = field(default_factory=list)
    outputs: List[ArtifactSpec] = field(default_factory=list)
    failure: FailureProfile = field(default_factory=FailureProfile)
    uses_gpu: bool = False
    #: Per-step retry limit; None defers to the operator's policy.
    retry_limit: Optional[int] = None
    #: Argo-style run condition (e.g. ``"{{flip.result}} == heads"``);
    #: evaluated by the engine against recorded step results.
    when_expr: Optional[str] = None
    #: Possible ``result`` values this step can produce; the engine
    #: draws one (seeded) at completion.
    result_options: tuple = ()

    def __post_init__(self) -> None:
        if self.duration_s < 0:
            raise SpecError(f"step {self.name}: negative duration")
        if self.retry_limit is not None and self.retry_limit < 0:
            raise SpecError(f"step {self.name}: negative retry limit")


@dataclass
class ExecutableWorkflow:
    """A DAG of :class:`ExecutableStep` ready for the operator."""

    name: str
    steps: Dict[str, ExecutableStep] = field(default_factory=dict)
    #: Memoized :func:`executable_to_dict` form.  Submitting the same
    #: workflow object repeatedly (journal replay, checkpoint
    #: migration, verify sweeps) re-journals the spec each time, and
    #: rebuilding the nested step/artifact dicts dominated those
    #: appends.  Steps are treated as immutable once added — the same
    #: contract :meth:`QueuedWorkflow.peak_demand` relies on — so
    #: :meth:`add_step` is the only invalidation point.
    _spec_dict: Optional[dict] = field(default=None, repr=False, compare=False)

    def add_step(self, step: ExecutableStep) -> ExecutableStep:
        if step.name in self.steps:
            raise SpecError(f"duplicate step name: {step.name}")
        self.steps[step.name] = step
        self._spec_dict = None
        return step

    def validate(self) -> None:
        """Check dependency references and acyclicity."""
        for step in self.steps.values():
            for dep in step.dependencies:
                if dep not in self.steps:
                    raise SpecError(f"step {step.name}: unknown dependency {dep!r}")
        # Kahn's algorithm for cycle detection.
        indegree = {name: 0 for name in self.steps}
        for step in self.steps.values():
            for _ in step.dependencies:
                indegree[step.name] += 1
        ready = [name for name, deg in indegree.items() if deg == 0]
        seen = 0
        children: Dict[str, List[str]] = {name: [] for name in self.steps}
        for step in self.steps.values():
            for dep in step.dependencies:
                children[dep].append(step.name)
        while ready:
            node = ready.pop()
            seen += 1
            for child in children[node]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    ready.append(child)
        if seen != len(self.steps):
            raise SpecError(f"workflow {self.name} contains a dependency cycle")

    def producers(self) -> Dict[str, str]:
        """Map artifact uid -> producing step name."""
        out: Dict[str, str] = {}
        for step in self.steps.values():
            for artifact in step.outputs:
                out[artifact.uid] = step.name
        return out

    def artifacts(self) -> Dict[str, ArtifactSpec]:
        out: Dict[str, ArtifactSpec] = {}
        for step in self.steps.values():
            for artifact in step.outputs:
                out[artifact.uid] = artifact
        return out

    def total_pods(self) -> int:
        return len(self.steps)


# --------------------------------------------------------------------------
# ExecutableWorkflow <-> plain dict (journal spec records)
# --------------------------------------------------------------------------


def _artifact_to_dict(artifact: ArtifactSpec) -> dict:
    return {
        "uid": artifact.uid,
        "size_bytes": artifact.size_bytes,
        "kind": artifact.kind,
    }


def _artifact_from_dict(data: dict) -> ArtifactSpec:
    return ArtifactSpec(
        uid=data["uid"], size_bytes=data["size_bytes"], kind=data.get("kind", "data")
    )


def executable_to_dict(workflow: ExecutableWorkflow) -> dict:
    """Lossless JSON-safe form of an executable workflow.

    The journal stores this once per workflow (the ``submitted``
    record's ``spec`` payload) so a replica that never saw the original
    submission can resume it from the journal alone.  Resource numbers
    stay raw floats/ints — never rounded quantity strings — so a
    round-trip is exact.

    The result is memoized on the workflow (consumers — the journal,
    replay, persistence — treat it as read-only) and invalidated by
    :meth:`ExecutableWorkflow.add_step`.
    """
    if workflow._spec_dict is not None:
        return workflow._spec_dict
    workflow._spec_dict = {
        "name": workflow.name,
        "steps": [
            {
                "name": step.name,
                "duration_s": step.duration_s,
                "requests": {
                    "cpu": step.requests.cpu,
                    "memory": step.requests.memory,
                    "gpu": step.requests.gpu,
                },
                "dependencies": list(step.dependencies),
                "inputs": [_artifact_to_dict(a) for a in step.inputs],
                "outputs": [_artifact_to_dict(a) for a in step.outputs],
                "failure_rate": step.failure.rate,
                "failure_pattern": step.failure.pattern,
                "uses_gpu": step.uses_gpu,
                "retry_limit": step.retry_limit,
                "when_expr": step.when_expr,
                "result_options": list(step.result_options),
            }
            for step in workflow.steps.values()
        ],
    }
    return workflow._spec_dict


def executable_from_dict(data: dict) -> ExecutableWorkflow:
    """Inverse of :func:`executable_to_dict` (validates the DAG)."""
    workflow = ExecutableWorkflow(name=data["name"])
    for entry in data["steps"]:
        requests = entry.get("requests", {})
        workflow.add_step(
            ExecutableStep(
                name=entry["name"],
                duration_s=entry["duration_s"],
                requests=ResourceQuantity(
                    cpu=requests.get("cpu", 0.0),
                    memory=requests.get("memory", 0),
                    gpu=requests.get("gpu", 0),
                ),
                dependencies=list(entry.get("dependencies", [])),
                inputs=[_artifact_from_dict(a) for a in entry.get("inputs", [])],
                outputs=[_artifact_from_dict(a) for a in entry.get("outputs", [])],
                failure=FailureProfile(
                    rate=entry.get("failure_rate", 0.0),
                    pattern=entry.get("failure_pattern", "PodCrashErr"),
                ),
                uses_gpu=entry.get("uses_gpu", False),
                retry_limit=entry.get("retry_limit"),
                when_expr=entry.get("when_expr"),
                result_options=tuple(entry.get("result_options", ())),
            )
        )
    workflow.validate()
    return workflow


# --------------------------------------------------------------------------
# Argo manifest <-> ExecutableWorkflow
# --------------------------------------------------------------------------

SIM_ANNOTATION = "sim/step-profile"


def step_profile_annotation(step: ExecutableStep) -> str:
    """Serialize simulation hints for an Argo template annotation."""
    return json.dumps(
        {
            "result_options": list(step.result_options),
            "duration_s": step.duration_s,
            "inputs": [
                {"uid": a.uid, "size_bytes": a.size_bytes, "kind": a.kind}
                for a in step.inputs
            ],
            "outputs": [
                {"uid": a.uid, "size_bytes": a.size_bytes, "kind": a.kind}
                for a in step.outputs
            ],
            "failure_rate": step.failure.rate,
            "failure_pattern": step.failure.pattern,
            "uses_gpu": step.uses_gpu,
        },
        sort_keys=True,
    )


def parse_argo_manifest(manifest: dict) -> ExecutableWorkflow:
    """Parse an Argo ``Workflow`` manifest into an executable model.

    Understands manifests produced by :mod:`repro.backends.argo`: a DAG
    entrypoint template whose tasks reference container templates, with
    ``sim/step-profile`` annotations carrying simulation quantities.
    Templates without the annotation get defaults (60 s, 1 CPU).
    """
    if manifest.get("kind") != "Workflow":
        raise SpecError(f"not an Argo Workflow manifest: kind={manifest.get('kind')}")
    spec = manifest.get("spec", {})
    templates = {t["name"]: t for t in spec.get("templates", [])}
    entrypoint = spec.get("entrypoint")
    if entrypoint not in templates:
        raise SpecError(f"entrypoint template {entrypoint!r} not found")
    entry = templates[entrypoint]
    if "dag" not in entry:
        raise SpecError("entrypoint template must be a DAG template")

    workflow = ExecutableWorkflow(name=manifest.get("metadata", {}).get("name", "wf"))
    for task in entry["dag"].get("tasks", []):
        template = templates.get(task["template"])
        if template is None:
            raise SpecError(f"task {task['name']}: unknown template {task['template']!r}")
        annotations = template.get("metadata", {}).get("annotations", {})
        profile = json.loads(annotations.get(SIM_ANNOTATION, "{}"))
        container = template.get("container", template.get("script", {}))
        requests = ResourceQuantity.parse(
            container.get("resources", {}).get("requests", {})
        )
        outputs = [
            ArtifactSpec(uid=o["uid"], size_bytes=o["size_bytes"], kind=o.get("kind", "data"))
            for o in profile.get("outputs", [])
        ]
        inputs = [
            ArtifactSpec(uid=i["uid"], size_bytes=i["size_bytes"], kind=i.get("kind", "data"))
            for i in profile.get("inputs", [])
        ]
        retry_limit = template.get("retryStrategy", {}).get("limit")
        workflow.add_step(
            ExecutableStep(
                name=task["name"],
                duration_s=float(profile.get("duration_s", 60.0)),
                requests=requests if not requests.is_zero() else ResourceQuantity(cpu=1.0),
                dependencies=list(task.get("dependencies", [])),
                inputs=inputs,
                outputs=outputs,
                failure=FailureProfile(
                    rate=float(profile.get("failure_rate", 0.0)),
                    pattern=profile.get("failure_pattern", "PodCrashErr"),
                ),
                uses_gpu=bool(profile.get("uses_gpu", False)),
                retry_limit=retry_limit,
                when_expr=task.get("when"),
                result_options=tuple(profile.get("result_options", ())),
            )
        )
    workflow.validate()
    return workflow
