"""Cross-tenant fairness policies and SLO lanes for admission scheduling.

Priority aging alone is not a fairness story: a stream of high-priority
arrivals can hold a low-priority tenant's work at the back of every
placement pass until its age bonus closes the gap, and the dispatch
benchmark measured exactly that (a ~1957 s starvation gap for the batch
tenant at 500 workflows / 4 tenants).  This module supplies the two
standard multi-tenant fixes from the scheduling literature plus the
admission-time SLO split the paper's Appendix B queue substrate assumes:

* :class:`FairnessPolicy` — a pluggable ordering over the pending queue.
  ``strict-priority`` reproduces the seed behaviour bit-for-bit (aged
  priority, arrival-sequence tie-break); ``weighted-fair`` orders
  tenants by weighted CPU+memory share so whoever has consumed the
  least of their entitlement goes first; ``drf`` orders by weighted
  *dominant* share across cpu/mem/gpu (dominant-resource fairness), so
  a GPU-hungry tenant and a CPU-hungry tenant are compared on the
  resource each actually saturates.
* :class:`LaneConfig` — admission-time SLO classes.  Every submission
  lands in a lane (``serving`` before ``batch``); lanes carry their own
  queue-depth bound and aging rate, and only serving-lane work may
  trigger preemption of over-share batch-lane work.
* :class:`TenantShares` — a live view of each tenant's charged share of
  the fleet, read by the policies and by the preemption victim search.

Fairness policies reorder *scheduling only*: the ``fairness`` verify
oracle asserts that outputs-view fingerprints are identical across all
policies (and with preemption on), because a policy that changed
results would not be a scheduler knob but a correctness bug.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple, Union

from ..k8s.resources import ResourceQuantity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (admission imports us)
    from .admission import AdmissionRecord


class FairnessError(ValueError):
    """Raised for unknown policies, bad weights or malformed lanes."""


# --------------------------------------------------------------- SLO lanes

#: Latency-sensitive lane: placed first in every pass, may preempt.
SLO_SERVING = "serving"
#: Throughput lane: placed after serving, preemptible when over share.
SLO_BATCH = "batch"
#: Back-compat default — submissions that never heard of lanes behave
#: exactly as before (everything in one lane, original ordering).
DEFAULT_SLO_CLASS = SLO_BATCH


@dataclass(frozen=True)
class LaneConfig:
    """Admission-time SLO class configuration.

    ``order`` decides inter-lane placement order within a pass (lower
    first).  ``aging_rate`` / ``max_pending`` override the pipeline
    defaults per lane (None = inherit / unbounded).  ``can_preempt``
    marks a lane whose headroom-blocked work may evict over-share
    ``preemptible``-lane workflows via checkpoint/restart.
    """

    name: str
    order: int = 0
    aging_rate: Optional[float] = None
    max_pending: Optional[int] = None
    can_preempt: bool = False
    preemptible: bool = False

    def __post_init__(self) -> None:
        if self.aging_rate is not None and self.aging_rate < 0:
            raise FairnessError(
                f"lane {self.name}: aging_rate must be >= 0: {self.aging_rate}"
            )
        if self.max_pending is not None and self.max_pending < 1:
            raise FairnessError(
                f"lane {self.name}: max_pending must be >= 1 or None: "
                f"{self.max_pending}"
            )


def default_lanes() -> Dict[str, LaneConfig]:
    """The stock two-lane SLO split: serving first, batch preemptible."""
    return {
        SLO_SERVING: LaneConfig(name=SLO_SERVING, order=0, can_preempt=True),
        SLO_BATCH: LaneConfig(name=SLO_BATCH, order=1, preemptible=True),
    }


# ------------------------------------------------------------ tenant shares


class TenantShares:
    """Live per-tenant resource-share view over the fleet capacity.

    ``usage_fn(user)`` returns the tenant's currently charged
    ``(cpu, memory, gpu)`` amounts (the admission pipeline wires this to
    the queue's quota accounting, so shares always reflect what is
    actually placed right now).  Weights scale entitlement: a tenant
    with weight 2.0 is treated as over-share only at twice the usage of
    a weight-1.0 tenant.  Unknown tenants default to weight 1.0.
    """

    def __init__(
        self,
        capacity: ResourceQuantity,
        usage_fn: Callable[[str], Tuple[float, float, float]],
        weights: Optional[Dict[str, float]] = None,
    ) -> None:
        for user, weight in (weights or {}).items():
            if weight <= 0:
                raise FairnessError(
                    f"tenant {user}: fairness weight must be > 0: {weight}"
                )
        self.capacity = capacity
        self._usage_fn = usage_fn
        self.weights = dict(weights or {})

    def weight(self, user: str) -> float:
        return self.weights.get(user, 1.0)

    def fractions(self, user: str) -> Tuple[float, float, float]:
        """(cpu, memory, gpu) fractions of fleet capacity in use."""
        cpu_used, memory_used, gpu_used = self._usage_fn(user)
        return (
            cpu_used / self.capacity.cpu if self.capacity.cpu else 0.0,
            memory_used / self.capacity.memory if self.capacity.memory else 0.0,
            gpu_used / self.capacity.gpu if self.capacity.gpu else 0.0,
        )

    def normalized_share(self, user: str) -> float:
        """Weighted mean CPU+memory share (the WFQ virtual-time proxy)."""
        cpu_frac, mem_frac, _ = self.fractions(user)
        return (cpu_frac + mem_frac) / 2.0 / self.weight(user)

    def dominant_share(self, user: str) -> float:
        """Weighted dominant share across cpu/mem/gpu (the DRF measure)."""
        return max(self.fractions(user)) / self.weight(user)


# --------------------------------------------------------- fairness policies


class FairnessPolicy:
    """Ordering over pending admissions within one placement pass.

    Subclasses implement :meth:`key`; lower keys place first.  Keys must
    be deterministic (include ``seq`` as the final tie-break) — the
    pipeline's same-seed replay guarantee depends on it.
    """

    #: Registry name; subclasses override.
    name = "?"

    def key(
        self,
        admission: "AdmissionRecord",
        seq: int,
        *,
        now: float,
        aging_rate: float,
        shares: TenantShares,
    ) -> Tuple:
        raise NotImplementedError


class StrictPriorityPolicy(FairnessPolicy):
    """The seed ordering: aged priority, arrival sequence tie-break.

    No cross-tenant correction — kept as the back-compat default and as
    the batch dispatcher's contractual ordering.
    """

    name = "strict-priority"

    def key(self, admission, seq, *, now, aging_rate, shares):
        return (-admission.effective_priority(now, aging_rate), seq)


class WeightedFairPolicy(FairnessPolicy):
    """Weighted-fair queueing by tenant CPU+memory share.

    The tenant currently consuming the smallest weighted share of the
    fleet goes first; aged priority only breaks ties *within* a tenant's
    claim level, so no priority stream can starve an idle tenant.
    """

    name = "weighted-fair"

    def key(self, admission, seq, *, now, aging_rate, shares):
        return (
            shares.normalized_share(admission.user),
            -admission.effective_priority(now, aging_rate),
            seq,
        )


class DRFPolicy(FairnessPolicy):
    """Dominant-resource fairness over cpu/mem/gpu shares.

    Tenants are compared on the weighted share of whichever resource
    each uses most — the multi-resource generalization of max-min
    fairness, so GPU-bound and CPU-bound tenants contend on equal terms.
    """

    name = "drf"

    def key(self, admission, seq, *, now, aging_rate, shares):
        return (
            shares.dominant_share(admission.user),
            -admission.effective_priority(now, aging_rate),
            seq,
        )


FAIRNESS_REGISTRY: Dict[str, type] = {
    policy.name: policy
    for policy in (StrictPriorityPolicy, WeightedFairPolicy, DRFPolicy)
}


def make_fairness_policy(
    policy: Union[str, FairnessPolicy, None],
) -> FairnessPolicy:
    """Resolve a policy name (or pass an instance through).

    ``None`` resolves to the back-compat ``strict-priority`` policy.
    """
    if policy is None:
        return StrictPriorityPolicy()
    if isinstance(policy, FairnessPolicy):
        return policy
    cls = FAIRNESS_REGISTRY.get(policy)
    if cls is None:
        raise FairnessError(
            f"unknown fairness policy {policy!r}; "
            f"choose from {sorted(FAIRNESS_REGISTRY)} or pass a "
            "FairnessPolicy instance"
        )
    return cls()
