"""The simulated workflow operator (Argo-style controller).

Reconciles submitted workflows into pod executions on the simulated
cluster, honouring the DAG: a step starts only after every dependency
reached a done status.  The operator consults the caching layer for
input-fetch times, samples failures per attempt, applies the retry
policy with exponential backoff, and supports the paper's
restart-from-failure path (skipping Succeeded / Skipped / Cached steps).

Multiple workflows may run concurrently; they compete for the same
cluster resources, which is how the utilization figures are produced.

Observability: the operator emits nested spans (workflow -> step ->
{queue-wait, attempt -> {cache-fetch, compute}, retry-backoff}) through
a :class:`repro.obs.trace.Tracer` and counts attempts / retries /
terminal statuses in a :class:`repro.obs.metrics.MetricsRegistry`.
Both default to no-op/private instances, so untraced simulations pay
almost nothing.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..k8s.apiserver import APIServer
from ..k8s.cluster import Cluster, Scheduler
from ..k8s.objects import Pod, PodPhase
from ..obs.metrics import MetricsRegistry
from ..obs.trace import NullTracer
from .cachehooks import CacheManagerProtocol, NullCacheManager
from .journal import Journal, demote_running_steps
from .retry import FailureInjector, RetryPolicy
from .simclock import EventHandle, SimClock
from .spec import (
    ExecutableStep,
    ExecutableWorkflow,
    SpecError,
    executable_to_dict,
    parse_argo_manifest,
)
from .status import StepStatus, WorkflowPhase, WorkflowRecord

CompletionCallback = Callable[[WorkflowRecord], None]

#: ``{{step.output}} OP value`` — the condition grammar backends emit.
_CONDITION_RE = re.compile(
    r"\{\{([^.}]+)\.([^}]+)\}\}\s*(==|!=|>=|<=|>|<)\s*(.+?)\s*$"
)


def validate_when_expr(expr: str, step_name: str = "?") -> None:
    """Reject a ``when`` expression whose clauses don't parse.

    Historically an unparseable clause was silently skipped, which made
    the guard evaluate true and ran steps whose condition never held.
    Validation happens at submit time so the author gets a clear error
    instead of a silently mis-branched workflow.
    """
    for clause in expr.split("&&"):
        if _CONDITION_RE.match(clause.strip()) is None:
            raise SpecError(
                f"step {step_name!r}: unparseable `when` clause "
                f"{clause.strip()!r} in expression {expr!r}; expected "
                "'{{step.output}} OP value' with OP one of "
                "== != >= <= > <"
            )


def _compare(left: str, operator: str, right: str) -> bool:
    """Compare result strings; numeric when both sides parse as numbers."""
    try:
        left_value: object = float(left)
        right_value: object = float(right)
    except ValueError:
        left_value, right_value = left, right
    if operator == "==":
        return left_value == right_value
    if operator == "!=":
        return left_value != right_value
    if not isinstance(left_value, float) or not isinstance(right_value, float):
        return False
    return {
        ">": left_value > right_value,
        "<": left_value < right_value,
        ">=": left_value >= right_value,
        "<=": left_value <= right_value,
    }[operator]


@dataclass
class _Attempt:
    """One in-flight step attempt (needed to undo it on interruption).

    The operator charges an attempt's full timeline to the record the
    moment it is scheduled (natural in a discrete-event world).  A fault
    that kills the attempt mid-flight must refund the un-elapsed part of
    those charges, so everything needed for the refund rides here.
    """

    pod: Pod
    handle: EventHandle
    start: float
    elapsed: float
    charged_fetch: float
    charged_compute: float
    #: Input fetches newly counted in cache stats by this attempt, as
    #: (uid, hit, fetch_end_offset) — uncounted again if interrupted
    #: before fetch_end_offset.
    newly_counted: List[Tuple[str, bool, float]] = field(default_factory=list)


@dataclass
class _RunState:
    """Mutable per-workflow bookkeeping inside the operator."""

    workflow: ExecutableWorkflow
    record: WorkflowRecord
    remaining_deps: Dict[str, int] = field(default_factory=dict)
    children: Dict[str, List[str]] = field(default_factory=dict)
    on_complete: List[CompletionCallback] = field(default_factory=list)
    failed: bool = False
    in_flight: int = 0
    #: Step name -> its currently running attempt (chaos interrupts these).
    active_attempts: Dict[str, "_Attempt"] = field(default_factory=dict)
    #: Deferred work scheduled on this workflow's behalf (retry backoffs,
    #: finish checks); cancelled wholesale on an operator restart.
    pending_handles: List[EventHandle] = field(default_factory=list)
    #: Recorded ``result`` values of completed steps (None = no declared
    #: result).  Conditions evaluate against these.
    results: Dict[str, Optional[str]] = field(default_factory=dict)
    #: Tracing state: the workflow's root span and one span per step.
    wf_span: Optional[object] = None
    step_spans: Dict[str, object] = field(default_factory=dict)
    #: Virtual time each step entered the resource wait queue.
    queue_since: Dict[str, float] = field(default_factory=dict)
    #: Input uids already counted in the step record's cache stats — a
    #: retry must not re-count a fetch the record already accounts for.
    counted_inputs: Dict[str, set] = field(default_factory=dict)

    def all_terminal(self) -> bool:
        return all(
            self.record.step(name).status.is_terminal()
            for name in self.workflow.steps
        )


class WorkflowOperator:
    """Drives workflows to completion on a simulated cluster."""

    def __init__(
        self,
        clock: SimClock,
        cluster: Cluster,
        cache_manager: Optional[CacheManagerProtocol] = None,
        retry_policy: Optional[RetryPolicy] = None,
        failure_injector: Optional[FailureInjector] = None,
        api_server: Optional[APIServer] = None,
        seed: int = 0,
        skip_cached_steps: bool = False,
        track_pods: bool = False,
        tracer: Optional[object] = None,
        metrics: Optional[MetricsRegistry] = None,
        journal: Optional[Journal] = None,
        fast: bool = True,
    ) -> None:
        self.clock = clock
        self.cluster = cluster
        self.scheduler = Scheduler(cluster)
        self.cache_manager = cache_manager or NullCacheManager()
        self.retry_policy = retry_policy or RetryPolicy()
        self.failure_injector = failure_injector or FailureInjector(seed=seed)
        self.api_server = api_server
        #: The paper's "reuse of intermediate results" optimization: a
        #: step whose outputs are all already cached is marked Cached
        #: and never scheduled (the engine "skip[s] steps to read cached
        #: data", Appendix B.C).
        self.skip_cached_steps = skip_cached_steps
        #: Mirror pod objects into the API server (observability: a real
        #: operator's pods are watchable cluster objects).  Off by
        #: default — large simulations don't need the write volume.
        self.track_pods = track_pods and api_server is not None
        #: Span recorder; :class:`NullTracer` when tracing is off.
        self.tracer = tracer if tracer is not None else NullTracer()
        #: Metrics registry — the single source for retry/attempt/waitq
        #: accounting.  A private registry is created when none is
        #: shared, so counters are always recorded.
        self.metrics = metrics or MetricsRegistry()
        self._m_attempts = self.metrics.counter(
            "engine_attempts_total", "Step attempts by outcome"
        )
        self._m_retries = self.metrics.counter(
            "engine_retries_total", "Step retries by failure pattern"
        )
        self._m_steps = self.metrics.counter(
            "engine_steps_total", "Terminal step statuses"
        )
        self._m_workflows = self.metrics.counter(
            "engine_workflows_total", "Terminal workflow phases"
        )
        self._m_backoff = self.metrics.counter(
            "engine_backoff_seconds_total", "Total retry backoff delay"
        )
        self._m_waitq = self.metrics.gauge(
            "scheduler_waitq_depth", "Steps waiting for cluster resources"
        )
        self._m_infra = self.metrics.counter(
            "engine_infra_retries_total",
            "Attempts requeued after infrastructure faults (budget-free)",
        )
        self._m_scans = self.metrics.counter(
            "engine_waitq_scans_total", "Wait-queue drain scans by kind"
        )
        self._m_scan_steps = self.metrics.counter(
            "engine_waitq_scan_steps_total", "Wait-queue entries examined"
        )
        #: Fast hot paths: coalesce same-instant drain events and skip
        #: rescanning wait-queue entries that nothing could have
        #: unblocked.  Placement decisions are proven identical to the
        #: naive full-rescan path by the ``engine_fast`` verify oracle.
        self.fast = fast
        #: One pending scheduled drain at a time (fast mode): every
        #: same-instant request after the first is covered by the drain
        #: already in the heap, which fires after its requester.
        self._drain_scheduled = False
        #: Dirty counter, bumped whenever capacity frees or a waiting
        #: workflow's state changes (failure, finish, checkpoint,
        #: restart).  While it is unchanged, already-vetted wait-queue
        #: entries cannot have become placeable — placeability is
        #: monotone in free capacity — so a drain only scans the tail.
        self._waitq_version = 0
        self._scanned_version = -1
        self._scanned_len = 0
        self._states: Dict[str, _RunState] = {}
        self._resource_waitq: List[Tuple[str, str]] = []
        self._rng = random.Random(seed ^ 0x5EED)
        self.completed: List[WorkflowRecord] = []
        #: Virtual time until which cache fetches fail (chaos outage).
        self._cache_outage_until = float("-inf")
        #: How long an attempt waits on a dead cache before giving up.
        self.cache_timeout_s = 30.0
        #: Append-only event journal (opt-in).  When set, every state
        #: transition is journaled and restart/checkpoint recovery
        #: rebuilds records by replaying the journal instead of trusting
        #: the in-memory snapshot.  Journaling never perturbs execution:
        #: with ``journal=None`` behaviour is bit-identical.
        self.journal = journal
        #: Hook a sharded fleet installs so resources this replica frees
        #: can wake sibling replicas' wait queues (each operator only
        #: drains its own).
        self.peer_wakeup: Optional[Callable[[], None]] = None
        #: Run states awaiting a scheduled restart-resume, with the
        #: resume event handle — a second restart during the first's
        #: downtime must fold these in rather than double-resume them.
        self._pending_resume: List[_RunState] = []
        self._resume_handle: Optional[EventHandle] = None

    # ------------------------------------------------------------- journaling

    def _journal_event(
        self,
        stream: str,
        kind: str,
        payload: Optional[dict] = None,
        event_id: Optional[str] = None,
    ) -> None:
        if self.journal is not None:
            self.journal.append(
                stream, kind, self.clock.now, payload, event_id=event_id
            )

    def _attempt_cache_counts(self, attempt: "_Attempt") -> Tuple[int, int]:
        hits = sum(1 for _, hit, _ in attempt.newly_counted if hit)
        return hits, len(attempt.newly_counted) - hits

    def _notify_peers(self) -> None:
        if self.peer_wakeup is not None:
            self.peer_wakeup()

    # ------------------------------------------------------------- submission

    def submit_manifest(
        self,
        manifest: dict,
        on_complete: Optional[CompletionCallback] = None,
        initial_results: Optional[Dict[str, Optional[str]]] = None,
    ) -> WorkflowRecord:
        """Submit an Argo-style Workflow manifest.

        When an API server is attached, the CRD is created first so the
        2 MB size limit is enforced exactly where production hits it.
        """
        if self.api_server is not None:
            from ..k8s.objects import APIObject

            self.api_server.create(APIObject.from_dict(manifest))
        workflow = parse_argo_manifest(manifest)
        return self.submit(
            workflow, on_complete=on_complete, initial_results=initial_results
        )

    def submit(
        self,
        workflow: ExecutableWorkflow,
        record: Optional[WorkflowRecord] = None,
        on_complete: Optional[CompletionCallback] = None,
        initial_results: Optional[Dict[str, Optional[str]]] = None,
    ) -> WorkflowRecord:
        """Submit an executable workflow; returns its (live) record.

        Passing an existing ``record`` resubmits after failure: steps
        whose status counts as done (Succeeded / Skipped / Cached) are
        not re-executed, matching the paper's manual-retry flow.

        ``initial_results`` pre-seeds recorded step results from outside
        this workflow (staged split execution passes the results of
        already-completed parts so ``when`` guards that reference steps
        in other parts keep their monolithic semantics).
        """
        workflow.validate()
        for step in workflow.steps.values():
            if step.when_expr:
                validate_when_expr(step.when_expr, step.name)
        if workflow.name in self._states:
            raise ValueError(f"workflow {workflow.name} is already running")
        record = record or WorkflowRecord(name=workflow.name)
        record.phase = WorkflowPhase.RUNNING
        record.submit_time = self.clock.now
        record.finish_time = None
        state = _RunState(workflow=workflow, record=record)
        if initial_results:
            state.results.update(initial_results)
            # Forwarded results must survive a restart: persist them on
            # the record (keyed by *foreign* step names, so they never
            # collide with this workflow's own step map).  Previously
            # they lived only in the run state, and a restart-resume
            # dropped them — `when` guards referencing other split
            # parts then read "never ran" and skipped spuriously.
            record.results.update(initial_results)
        # Resubmission: results of already-done steps survived on the
        # record snapshot; guards referencing them must still evaluate.
        # Foreign names (forwarded from other split parts) are restored
        # as-is — they have no step record here to gate on.
        for step_name, value in record.results.items():
            if step_name not in workflow.steps:
                state.results[step_name] = value
            elif record.step(step_name).status.counts_as_done():
                state.results[step_name] = value
        state.wf_span = self.tracer.begin(
            workflow.name, "workflow", self.clock.now, workflow=workflow.name
        )
        if on_complete is not None:
            state.on_complete.append(on_complete)
        self.cache_manager.register_workflow(workflow)

        state.children = {name: [] for name in workflow.steps}
        for step in workflow.steps.values():
            state.remaining_deps[step.name] = 0
        for step in workflow.steps.values():
            for dep in step.dependencies:
                if not record.step(dep).status.counts_as_done():
                    state.remaining_deps[step.name] += 1
                    state.children[dep].append(step.name)

        self._states[workflow.name] = state
        if self.journal is not None:
            payload: dict = {}
            if self.journal.workflow_spec_dict(workflow.name) is None:
                payload["spec"] = executable_to_dict(workflow)
            else:
                payload["resubmit"] = True
            if initial_results:
                payload["initial_results"] = dict(initial_results)
            self._journal_event(workflow.name, "submitted", payload)

        launched_any = False
        for step in workflow.steps.values():
            step_record = record.step(step.name)
            if step_record.status.counts_as_done():
                continue
            step_record.status = StepStatus.PENDING
            step_record.last_error = None
            if state.remaining_deps[step.name] == 0:
                self._enqueue_step(state, step)
                launched_any = True
        if not launched_any and state.all_terminal():
            # Nothing to do (empty workflow or everything already done).
            self._schedule_state(state, 0.0, lambda: self._maybe_finish(state))
        return record

    # ------------------------------------------------------------- execution

    def _outputs_all_cached(self, step: ExecutableStep) -> bool:
        if not self.skip_cached_steps or not step.outputs:
            return False
        contains = getattr(self.cache_manager, "contains", None)
        if contains is None:
            return False
        return all(contains(artifact.uid) for artifact in step.outputs)

    def _condition_met(self, state: _RunState, expr: str) -> bool:
        """Evaluate a ``when`` expression against recorded results.

        A reference to a Skipped step (or one that never ran) is false —
        which makes skip cascade through unrolled exec_while chains.  A
        reference to a completed step with no declared result evaluates
        true (the all-branches upper bound for unsimulated results).
        """
        for clause in expr.split("&&"):
            match = _CONDITION_RE.match(clause.strip())
            if match is None:
                # submit() validates every expression, so this is only
                # reachable through direct misuse — fail loudly rather
                # than silently treating the guard as satisfied.
                raise SpecError(f"unparseable `when` clause: {clause.strip()!r}")
            step_name, _output, operator, value = match.groups()
            if step_name not in state.results:
                return False
            result = state.results[step_name]
            if result is None:
                continue
            if not _compare(result, operator, value):
                return False
        return True

    def _step_span(self, state: _RunState, step: ExecutableStep) -> object:
        """Get-or-open the step's span (opened on first enqueue)."""
        if step.name not in state.step_spans:
            state.step_spans[step.name] = self.tracer.begin(
                step.name,
                "step",
                self.clock.now,
                parent=state.wf_span,
                step=step.name,
                deps=list(step.dependencies),
            )
        return state.step_spans[step.name]

    def _end_step_span(self, state: _RunState, step_name: str, status: str) -> None:
        self.tracer.end(
            state.step_spans.get(step_name), self.clock.now, status=status
        )

    def _is_live(self, state: _RunState) -> bool:
        """False when ``state`` was superseded (operator restart): events
        scheduled against a dead incarnation must become no-ops, or a
        stale callback would double-drive the resumed workflow."""
        return self._states.get(state.workflow.name) is state

    def _schedule_state(
        self, state: _RunState, delay: float, callback: Callable[[], None]
    ) -> EventHandle:
        """Schedule work on a workflow's behalf, tracked for cancellation."""
        handle = self.clock.schedule(delay, callback)
        state.pending_handles.append(handle)
        if len(state.pending_handles) > 32:
            state.pending_handles = [
                h for h in state.pending_handles if not (h.cancelled or h.fired)
            ]
        return handle

    def _enqueue_step(self, state: _RunState, step: ExecutableStep) -> None:
        if not self._is_live(state):
            return
        if state.failed:
            # The workflow already failed (a sibling step hit a fatal
            # error): a pending retry is aborted, not dropped, so the
            # step reaches a terminal status and the workflow settles.
            record = state.record.step(step.name)
            if not record.status.is_terminal():
                record.status = StepStatus.FAILED
                record.finish_time = self.clock.now
                self._m_steps.inc(status=StepStatus.FAILED.value)
                self._journal_event(
                    state.workflow.name, "step-aborted", {"step": step.name}
                )
            self._end_step_span(state, step.name, StepStatus.FAILED.value)
            self._schedule_state(state, 0.0, lambda: self._maybe_finish(state))
            return
        if step.when_expr and not self._condition_met(state, step.when_expr):
            record = state.record.step(step.name)
            record.status = StepStatus.SKIPPED
            record.start_time = self.clock.now
            record.finish_time = self.clock.now
            self._step_span(state, step)
            self._end_step_span(state, step.name, StepStatus.SKIPPED.value)
            self._m_steps.inc(status=StepStatus.SKIPPED.value)
            self._journal_event(
                state.workflow.name, "step-skipped", {"step": step.name}
            )
            self._schedule_state(state, 0.0, lambda: self._after_skip(state, step))
            return
        if self._outputs_all_cached(step):
            record = state.record.step(step.name)
            record.status = StepStatus.CACHED
            record.start_time = self.clock.now
            record.finish_time = self.clock.now
            self._step_span(state, step)
            self._end_step_span(state, step.name, StepStatus.CACHED.value)
            self._m_steps.inc(status=StepStatus.CACHED.value)
            self._journal_event(
                state.workflow.name, "step-cached", {"step": step.name}
            )
            self._schedule_state(state, 0.0, lambda: self._after_skip(state, step))
            return
        self._step_span(state, step)
        state.queue_since[step.name] = self.clock.now
        self._resource_waitq.append((state.workflow.name, step.name))
        self._m_waitq.set(len(self._resource_waitq))
        self._schedule_drain()

    def _after_skip(self, state: _RunState, step: ExecutableStep) -> None:
        if not self._is_live(state):
            return
        self._advance_children(state, step)
        self._maybe_finish(state)

    def _schedule_drain(self) -> None:
        """Request a wait-queue drain at the current virtual instant.

        Fast mode coalesces: a drain already scheduled (and not yet
        fired) covers every later same-instant request, because it sits
        behind the requester in the event order and scans are
        idempotent under unchanged capacity.
        """
        if self.fast and self._drain_scheduled:
            return
        self._drain_scheduled = True
        self.clock.schedule(0.0, self._drain_waitq)

    def _waitq_dirty(self) -> None:
        """Capacity freed or a waiting workflow's state changed: the next
        drain must rescan from the head."""
        self._waitq_version += 1

    def _drain_waitq(self) -> None:
        """Try to start every waiting step that now fits on the cluster."""
        self._drain_scheduled = False
        version = self._waitq_version
        start = 0
        if self.fast and self._scanned_version == version:
            # Nothing dirtied the queue since the last scan: the head
            # entries are still blocked, only unvetted tail entries
            # (enqueued since) can possibly place.
            start = self._scanned_len
            if start >= len(self._resource_waitq):
                self._m_scans.inc(kind="skipped")
                return
            self._m_scans.inc(kind="tail")
        else:
            self._m_scans.inc(kind="full")
        still_waiting: List[Tuple[str, str]] = self._resource_waitq[:start]
        self._m_scan_steps.inc(len(self._resource_waitq) - start)
        for wf_name, step_name in self._resource_waitq[start:]:
            state = self._states.get(wf_name)
            if state is None:
                continue
            if state.failed:
                # Abort queued work of a failed workflow explicitly.
                record = state.record.step(step_name)
                if not record.status.is_terminal():
                    record.status = StepStatus.FAILED
                    record.finish_time = self.clock.now
                    self._m_steps.inc(status=StepStatus.FAILED.value)
                    self._journal_event(
                        wf_name, "step-aborted", {"step": step_name}
                    )
                self._end_step_span(state, step_name, StepStatus.FAILED.value)
                self._maybe_finish(state)
                continue
            step = state.workflow.steps[step_name]
            # Attempt numbers are 1-based and incremented by
            # _run_attempt; the pod for attempt N must carry N, not the
            # pre-increment count, or pod<->attempt correlation breaks.
            attempt_number = state.record.step(step_name).attempts + 1
            pod = Pod(
                name=f"{wf_name}--{step_name}--{attempt_number}",
                requests=step.requests,
                labels={"workflow": wf_name, "step": step_name},
            )
            node = self.scheduler.try_schedule(pod)
            if node is None:
                still_waiting.append((wf_name, step_name))
            else:
                queued_at = state.queue_since.pop(step_name, None)
                if queued_at is not None and self.clock.now > queued_at:
                    # Zero-length waits (resources were free) add noise,
                    # not information — only real queueing is recorded.
                    self.tracer.add_span(
                        "queue-wait",
                        "queue",
                        queued_at,
                        self.clock.now,
                        parent=state.step_spans.get(step_name),
                        pod=pod.metadata.name,
                    )
                self._run_attempt(state, step, pod)
        self._resource_waitq = still_waiting
        self._scanned_version = version
        self._scanned_len = len(still_waiting)
        self._m_waitq.set(len(self._resource_waitq))

    def _run_attempt(self, state: _RunState, step: ExecutableStep, pod: Pod) -> None:
        record = state.record.step(step.name)
        record.attempts += 1
        record.status = StepStatus.RUNNING
        if record.start_time is None:
            record.start_time = self.clock.now
        self._journal_event(
            state.workflow.name,
            "attempt-started",
            {"step": step.name, "attempt": record.attempts, "pod": pod.metadata.name},
            event_id=f"{state.workflow.name}:start:{step.name}:{record.attempts}",
        )
        state.in_flight += 1
        pod.phase = PodPhase.RUNNING
        if self.track_pods:
            self.api_server.create(pod)

        now = self.clock.now
        outage = bool(step.inputs) and now < self._cache_outage_until
        fetch_seconds = 0.0
        fetches: List[Tuple[str, bool, float]] = []
        if not outage:
            for artifact in step.inputs:
                seconds, hit = self.cache_manager.fetch(artifact, now=now)
                fetch_seconds += seconds
                fetches.append((artifact.uid, hit, fetch_seconds))

        if outage:
            # The cache tier is dark (injected transient outage): the
            # attempt blocks on its first read and times out.  This is an
            # infrastructure fault — it must not consume the step's
            # application retry budget.
            pattern: Optional[str] = "CacheFetchTimeoutErr"
            elapsed = self.cache_timeout_s
            charged_fetch, charged_compute = elapsed, 0.0
        else:
            pattern = self.failure_injector.sample(
                step.name, step.failure.rate, step.failure.pattern
            )
            if pattern is None:
                elapsed = fetch_seconds + step.duration_s
            else:
                # The attempt dies partway through; charge a random fraction
                # of the sequential fetch-then-compute timeline.
                fraction = 0.25 + 0.5 * self._rng.random()
                elapsed = (fetch_seconds + step.duration_s) * fraction
            charged_fetch = min(fetch_seconds, elapsed)
            charged_compute = elapsed - charged_fetch
        record.fetch_seconds += charged_fetch
        record.compute_seconds += charged_compute

        # Cache stats count per *completed* fetch, once per input: an
        # attempt that dies mid-fetch must not count the aborted reads
        # in full, and a retry must not re-count inputs the record
        # already accounts for — both inflated hit ratios under failure
        # injection.
        counted = state.counted_inputs.setdefault(step.name, set())
        newly_counted: List[Tuple[str, bool, float]] = []
        hits = misses = 0
        for uid, hit, fetch_end in fetches:
            if fetch_end > elapsed + 1e-9 or uid in counted:
                continue
            counted.add(uid)
            newly_counted.append((uid, hit, fetch_end))
            if hit:
                hits += 1
            else:
                misses += 1
        record.cache_hits += hits
        record.cache_misses += misses

        outcome = "success" if pattern is None else "failure"
        self._m_attempts.inc(outcome=outcome)
        attempt_args = {"pod": pod.metadata.name, "outcome": outcome}
        if pattern is not None:
            attempt_args["pattern"] = pattern
        attempt_span = self.tracer.add_span(
            f"attempt-{record.attempts}",
            "attempt",
            now,
            now + elapsed,
            parent=state.step_spans.get(step.name),
            **attempt_args,
        )
        if charged_fetch > 0.0:
            self.tracer.add_span(
                "cache-fetch",
                "fetch",
                now,
                now + charged_fetch,
                parent=attempt_span,
                hits=hits,
                misses=misses,
            )
        if charged_compute > 0.0:
            self.tracer.add_span(
                "compute",
                "compute",
                now + charged_fetch,
                now + elapsed,
                parent=attempt_span,
            )

        if pattern is None:
            handle = self.clock.schedule(
                elapsed, lambda: self._on_attempt_success(state, step, pod)
            )
        else:
            # Only the outage path is an infrastructure fault here; a
            # sampled pattern is the step's own failure profile even when
            # it resembles one (e.g. sampled PodEvictedErr), so legacy
            # no-retry baselines keep their semantics.
            handle = self.clock.schedule(
                elapsed,
                lambda: self._on_attempt_failure(
                    state, step, pod, pattern, infra=outage
                ),
            )
        state.active_attempts[step.name] = _Attempt(
            pod=pod,
            handle=handle,
            start=now,
            elapsed=elapsed,
            charged_fetch=charged_fetch,
            charged_compute=charged_compute,
            newly_counted=newly_counted,
        )

    def _on_attempt_success(
        self, state: _RunState, step: ExecutableStep, pod: Pod
    ) -> None:
        if not self._is_live(state):
            # Scheduled against a dead incarnation (the operator was
            # hard-killed or restarted): the attempt's outcome is lost.
            return
        attempt = state.active_attempts.pop(step.name, None)
        pod.phase = PodPhase.SUCCEEDED
        if self.track_pods:
            self.api_server.update_status(pod)
        self.scheduler.release(pod)
        self._waitq_dirty()
        state.in_flight -= 1
        record = state.record.step(step.name)
        record.status = StepStatus.SUCCEEDED
        record.finish_time = self.clock.now
        self._end_step_span(state, step.name, StepStatus.SUCCEEDED.value)
        self._m_steps.inc(status=StepStatus.SUCCEEDED.value)
        value = (
            self._rng.choice(list(step.result_options))
            if step.result_options
            else None
        )
        state.results[step.name] = value
        state.record.results[step.name] = value
        if self.journal is not None and attempt is not None:
            hits, misses = self._attempt_cache_counts(attempt)
            self._journal_event(
                state.workflow.name,
                "attempt-succeeded",
                {
                    "step": step.name,
                    "result": value,
                    "fetch": attempt.charged_fetch,
                    "compute": attempt.charged_compute,
                    "hits": hits,
                    "misses": misses,
                },
                event_id=f"{state.workflow.name}:ok:{step.name}:{record.attempts}",
            )
        for artifact in step.outputs:
            self.cache_manager.on_artifact_produced(artifact, self.clock.now)
        on_step_finished = getattr(self.cache_manager, "on_step_finished", None)
        if on_step_finished is not None:
            on_step_finished(f"{state.workflow.name}/{step.name}")
        self._advance_children(state, step)
        self._maybe_finish(state)
        self._drain_waitq()
        self._notify_peers()

    def _on_attempt_failure(
        self,
        state: _RunState,
        step: ExecutableStep,
        pod: Pod,
        pattern: str,
        infra: bool = False,
    ) -> None:
        if not self._is_live(state):
            return
        attempt = state.active_attempts.pop(step.name, None)
        pod.phase = PodPhase.FAILED
        if self.track_pods:
            self.api_server.update_status(pod)
        self.scheduler.release(pod)
        self._waitq_dirty()
        state.in_flight -= 1
        charges = (0.0, 0.0, 0, 0)
        if attempt is not None:
            hits, misses = self._attempt_cache_counts(attempt)
            charges = (attempt.charged_fetch, attempt.charged_compute, hits, misses)
        self._route_failure(state, step, pattern, infra=infra, charges=charges)
        self._drain_waitq()
        self._notify_peers()

    def _route_failure(
        self,
        state: _RunState,
        step: ExecutableStep,
        pattern: str,
        infra: bool = False,
        charges: Tuple[float, float, int, int] = (0.0, 0.0, 0, 0),
    ) -> None:
        """Decide what a failed/interrupted attempt becomes.

        ``infra=True`` marks a fault that originated in the
        infrastructure layer (chaos-injected node loss, eviction, cache
        outage, operator restart) rather than in the step itself: it is
        requeued on the policy's separate infra budget with a flat short
        delay and never charges the step's application retry budget.
        Sampled per-attempt failures keep the usual backoff-limited
        path, with infra interruptions refunded from the attempt count.
        """
        record = state.record.step(step.name)
        record.last_error = pattern
        step_span = state.step_spans.get(step.name)
        if infra:
            record.infra_failures += 1
        app_attempts = record.attempts - record.infra_failures

        def journal_failed(terminal: bool) -> None:
            fetch, compute, hits, misses = charges
            self._journal_event(
                state.workflow.name,
                "attempt-failed",
                {
                    "step": step.name,
                    "pattern": pattern,
                    "infra": infra,
                    "fetch": fetch,
                    "compute": compute,
                    "hits": hits,
                    "misses": misses,
                    "terminal": terminal,
                },
                event_id=(
                    f"{state.workflow.name}:fail:{step.name}:{record.attempts}"
                ),
            )

        if infra and self.retry_policy.infra_retry(pattern, record.infra_failures):
            journal_failed(terminal=False)
            delay = self.retry_policy.infra_backoff
            self.tracer.instant(
                "infra-retry",
                "retry",
                self.clock.now,
                parent=step_span,
                pattern=pattern,
                attempt=record.attempts,
                delay_s=delay,
            )
            self._m_infra.inc(pattern=pattern)
            self._schedule_state(
                state, delay, lambda: self._enqueue_step(state, step)
            )
        elif self.retry_policy.should_retry(
            pattern, app_attempts, limit_override=step.retry_limit
        ):
            journal_failed(terminal=False)
            delay = self.retry_policy.backoff(app_attempts, rng=self._rng)
            self.tracer.instant(
                "retry",
                "retry",
                self.clock.now,
                parent=step_span,
                pattern=pattern,
                attempt=record.attempts,
                delay_s=delay,
            )
            self._m_retries.inc(pattern=pattern)
            self._m_backoff.inc(delay)
            if delay > 0.0:
                self.tracer.add_span(
                    "retry-backoff",
                    "backoff",
                    self.clock.now,
                    self.clock.now + delay,
                    parent=step_span,
                    attempt=record.attempts,
                )
            self._schedule_state(
                state, delay, lambda: self._enqueue_step(state, step)
            )
        else:
            journal_failed(terminal=True)
            record.status = StepStatus.FAILED
            record.finish_time = self.clock.now
            self._end_step_span(state, step.name, StepStatus.FAILED.value)
            self._m_steps.inc(status=StepStatus.FAILED.value)
            state.failed = True
            # Queued siblings must be aborted on the next scan even if
            # they sit in the already-vetted head of the wait queue.
            self._waitq_dirty()
            self._maybe_finish(state)

    def _advance_children(self, state: _RunState, step: ExecutableStep) -> None:
        for child_name in state.children.get(step.name, []):
            state.remaining_deps[child_name] -= 1
            if state.remaining_deps[child_name] == 0 and not state.failed:
                self._enqueue_step(state, state.workflow.steps[child_name])

    def _maybe_finish(self, state: _RunState) -> None:
        if not self._is_live(state):
            return
        if state.in_flight > 0:
            return
        if state.failed:
            # Mark never-started steps as terminal-pending (they stay
            # Pending in the record but the workflow is over).
            self._finish_workflow(state)
            return
        if state.all_terminal():
            self._finish_workflow(state)

    def _finish_workflow(self, state: _RunState) -> None:
        record = state.record
        if record.phase.is_terminal():
            return
        record.phase = (
            WorkflowPhase.FAILED if state.failed else WorkflowPhase.SUCCEEDED
        )
        if state.failed:
            # Terminate any step left mid-retry: the controller tears the
            # workflow down, so nothing stays "Running" in the record.
            for step_record in record.steps.values():
                if step_record.status == StepStatus.RUNNING:
                    step_record.status = StepStatus.FAILED
                    step_record.finish_time = self.clock.now
                    self._journal_event(
                        record.name, "step-aborted", {"step": step_record.name}
                    )
        # Close any span left open (steps aborted mid-retry, etc).
        for step_name in state.step_spans:
            self._end_step_span(
                state, step_name, record.step(step_name).status.value
            )
        record.finish_time = self.clock.now
        self._journal_event(
            record.name, "workflow-finished", {"phase": record.phase.value}
        )
        self.tracer.end(state.wf_span, self.clock.now, phase=record.phase.value)
        self._m_workflows.inc(phase=record.phase.value)
        self._states.pop(state.workflow.name, None)
        # Any wait-queue entries this workflow left behind (failed path)
        # must be dropped by the next scan, vetted head included.
        self._waitq_dirty()
        self.completed.append(record)
        for callback in state.on_complete:
            callback(record)

    # ----------------------------------------------------------- chaos hooks
    #
    # Entry points for the fault-injection layer (repro.chaos).  Every
    # hook routes the interruption through the *infra* retry path, so a
    # step killed by the environment is requeued without consuming its
    # application retry budget.

    def _refund_attempt(
        self, state: _RunState, step_name: str, attempt: _Attempt
    ) -> Tuple[float, float, int, int]:
        """Undo the un-elapsed part of an interrupted attempt's charges.

        Attempts pre-charge their full fetch/compute timeline and cache
        stats at schedule time; killing one at ``now`` means only the
        work up to ``now`` really happened.  Returns what the attempt
        *kept* — ``(fetch, compute, hits, misses)`` — which is exactly
        what the journal records for an interrupted attempt (the journal
        stores settled facts, never forecasts).
        """
        attempt.handle.cancel()
        record = state.record.step(step_name)
        actual = max(0.0, self.clock.now - attempt.start)
        fetch_done = min(attempt.charged_fetch, actual)
        compute_done = min(
            attempt.charged_compute, max(0.0, actual - attempt.charged_fetch)
        )
        record.fetch_seconds -= attempt.charged_fetch - fetch_done
        record.compute_seconds -= attempt.charged_compute - compute_done
        counted = state.counted_inputs.get(step_name, set())
        kept_hits = kept_misses = 0
        for uid, hit, fetch_end in attempt.newly_counted:
            if fetch_end > actual + 1e-9:
                # This fetch never finished: a future attempt may count it.
                counted.discard(uid)
                if hit:
                    record.cache_hits = max(0, record.cache_hits - 1)
                else:
                    record.cache_misses = max(0, record.cache_misses - 1)
            elif hit:
                kept_hits += 1
            else:
                kept_misses += 1
        return fetch_done, compute_done, kept_hits, kept_misses

    def _interrupt_attempt(
        self,
        state: _RunState,
        step_name: str,
        pattern: str,
        release_pod: bool = True,
    ) -> bool:
        """Kill a running attempt mid-flight with an infra fault.

        ``release_pod=False`` is for faults where the node itself already
        dropped the binding (node crash).  Returns False when the step
        has no attempt in flight.
        """
        attempt = state.active_attempts.pop(step_name, None)
        if attempt is None:
            return False
        kept = self._refund_attempt(state, step_name, attempt)
        pod = attempt.pod
        pod.phase = PodPhase.FAILED
        if release_pod:
            self.scheduler.release(pod)
        if self.track_pods:
            self.api_server.update_status(pod)
        self._waitq_dirty()
        state.in_flight -= 1
        self._route_failure(
            state, state.workflow.steps[step_name], pattern, infra=True, charges=kept
        )
        return True

    def fail_node(self, node_name: str) -> List[Pod]:
        """Crash a node; its running attempts requeue on the infra budget."""
        node = self.cluster.node(node_name)
        if node is None or not node.ready:
            return []
        displaced = node.fail()
        for pod in displaced:
            wf_name = pod.metadata.labels.get("workflow")
            step_name = pod.metadata.labels.get("step")
            state = self._states.get(wf_name) if wf_name else None
            if state is None or step_name is None:
                continue
            attempt = state.active_attempts.get(step_name)
            if attempt is None or attempt.pod is not pod:
                continue
            # The node already dropped the binding and its allocation.
            self._interrupt_attempt(
                state, step_name, "NodeLostErr", release_pod=False
            )
        self._waitq_dirty()
        self._schedule_drain()
        self._notify_peers()
        return displaced

    def recover_node(self, node_name: str) -> None:
        """Bring a crashed node back and let waiting steps bind onto it."""
        node = self.cluster.node(node_name)
        if node is None or node.ready:
            return
        node.recover()
        self._waitq_dirty()
        self._schedule_drain()
        self._notify_peers()

    def evict_pod(self, pod: Pod) -> bool:
        """Evict one running pod (preemption / node-pressure eviction).

        The carried attempt requeues on the infra budget; usually it
        lands on a different node.  Returns False when the pod is not a
        currently running attempt of this operator.
        """
        wf_name = pod.metadata.labels.get("workflow")
        step_name = pod.metadata.labels.get("step")
        state = self._states.get(wf_name) if wf_name else None
        if state is None or step_name is None:
            return False
        attempt = state.active_attempts.get(step_name)
        if attempt is None or attempt.pod is not pod:
            return False
        node = self.cluster.node(pod.node_name) if pod.node_name else None
        if node is not None:
            node.evict(pod)
        interrupted = self._interrupt_attempt(
            state, step_name, "PodEvictedErr", release_pod=node is None
        )
        self._schedule_drain()
        self._notify_peers()
        return interrupted

    def checkpoint_workflow(
        self, name: str, reason: str = "PreemptedErr"
    ) -> Optional[WorkflowRecord]:
        """Checkpoint one running workflow and detach it from this operator.

        The per-workflow form of :meth:`simulate_restart`, promoted to a
        first-class API so an admission-level preemptor can evict a
        single over-share workflow instead of bouncing the whole
        controller: in-flight attempts are interrupted (charges
        refunded, pods released, one *infra* failure recorded per step —
        preemption never bills the application retry budget), deferred
        callbacks are cancelled, queued steps leave the resource wait
        queue, and Running steps reset to Pending in the record.

        Returns the surviving :class:`WorkflowRecord` snapshot; passing
        it back to :meth:`submit` — on this or *any other* operator —
        resumes from the checkpoint, skipping already-done steps (the
        fig6 checkpoint-migration path).  ``on_complete`` callbacks die
        with the run state; the resubmitter re-registers its own.
        Returns ``None`` when the workflow is not active here.
        """
        state = self._states.pop(name, None)
        if state is None:
            return None
        for handle in state.pending_handles:
            handle.cancel()
        state.pending_handles.clear()
        for step_name in sorted(state.active_attempts):
            attempt = state.active_attempts[step_name]
            kept = self._refund_attempt(state, step_name, attempt)
            pod = attempt.pod
            pod.phase = PodPhase.FAILED
            pod.reason = "Preempted"
            self.scheduler.release(pod)
            if self.track_pods:
                self.api_server.update_status(pod)
            record = state.record.step(step_name)
            record.infra_failures += 1
            record.last_error = reason
            self._m_infra.inc(pattern=reason)
            self._journal_event(
                name,
                "attempt-interrupted",
                {
                    "step": step_name,
                    "pattern": reason,
                    "fetch": kept[0],
                    "compute": kept[1],
                    "hits": kept[2],
                    "misses": kept[3],
                },
                event_id=f"{name}:interrupt:{step_name}:{record.attempts}",
            )
        state.active_attempts.clear()
        state.in_flight = 0
        self._resource_waitq = [
            (wf_name, step_name)
            for wf_name, step_name in self._resource_waitq
            if wf_name != name
        ]
        # The queue was rebuilt and capacity freed: invalidate the
        # vetted-prefix bookkeeping of the fast drain path.
        self._waitq_dirty()
        self._m_waitq.set(len(self._resource_waitq))
        self._journal_event(name, "checkpointed", {"reason": reason})
        if self.journal is not None:
            # Replay-based recovery: the record a resumer reads is what
            # the journal proves happened, not the in-memory snapshot.
            # (The materializer enforces the no-Running-steps invariant.)
            self.journal.materialize_into(name, state.record)
        else:
            # The snapshot a resumed submission reads has no Running
            # steps — their attempts were just interrupted.
            demote_running_steps(state.record)
        for step_name in state.step_spans:
            self._end_step_span(state, step_name, "preempted")
        self.tracer.end(state.wf_span, self.clock.now, phase="preempted")
        # Freed resources can unblock other workflows' queued steps.
        self._schedule_drain()
        self._notify_peers()
        return state.record

    def set_cache_outage(self, until: float) -> None:
        """Make cache fetches time out until virtual time ``until``."""
        self._cache_outage_until = max(self._cache_outage_until, until)

    def running_attempt_pods(self) -> List[Pod]:
        """Pods of in-flight attempts, sorted by name (deterministic)."""
        pods = [
            attempt.pod
            for state in self._states.values()
            for attempt in state.active_attempts.values()
        ]
        return sorted(pods, key=lambda pod: pod.metadata.name)

    def simulate_restart(self, downtime: float = 0.0) -> List[str]:
        """Kill the controller and resume from records ``downtime`` later.

        Everything in flight dies with the controller: attempts are
        interrupted (charges refunded, pods released, one infra failure
        recorded per step so the lost attempt is not billed to the app
        budget), scheduled callbacks are cancelled, and the in-memory
        run states are dropped.  After ``downtime`` seconds, each
        workflow is resubmitted from its surviving
        :class:`~repro.engine.status.WorkflowRecord` snapshot, which
        skips already-done steps — the paper's restart-from-failure
        path, exercised by the controller itself.  Returns the names of
        the workflows that will resume.
        """
        states = list(self._states.values())
        for state in states:
            name = state.workflow.name
            for handle in state.pending_handles:
                handle.cancel()
            state.pending_handles.clear()
            for step_name in sorted(state.active_attempts):
                attempt = state.active_attempts[step_name]
                kept = self._refund_attempt(state, step_name, attempt)
                pod = attempt.pod
                pod.phase = PodPhase.FAILED
                pod.reason = "OperatorRestart"
                self.scheduler.release(pod)
                if self.track_pods:
                    self.api_server.update_status(pod)
                record = state.record.step(step_name)
                record.infra_failures += 1
                record.last_error = "OperatorRestartErr"
                self._m_infra.inc(pattern="OperatorRestartErr")
                self._journal_event(
                    name,
                    "attempt-interrupted",
                    {
                        "step": step_name,
                        "pattern": "OperatorRestartErr",
                        "fetch": kept[0],
                        "compute": kept[1],
                        "hits": kept[2],
                        "misses": kept[3],
                    },
                    event_id=f"{name}:interrupt:{step_name}:{record.attempts}",
                )
            state.active_attempts.clear()
            state.in_flight = 0
            self._journal_event(
                name, "checkpointed", {"reason": "operator-restart"}
            )
            if self.journal is not None:
                # Replay-based recovery: rebuild the record from the
                # journal (which enforces the no-Running-steps invariant)
                # instead of trusting the in-memory snapshot.
                self.journal.materialize_into(name, state.record)
            else:
                # The snapshot a restarted controller reads has no
                # Running steps — they died with it.
                demote_running_steps(state.record)
            for step_name in state.step_spans:
                self._end_step_span(state, step_name, "operator-restart")
            self.tracer.end(
                state.wf_span, self.clock.now, phase="operator-restart"
            )
        self._states.clear()
        self._resource_waitq = []
        self._waitq_dirty()
        self._m_waitq.set(0)
        # A restart during a previous restart's downtime supersedes it:
        # those still-unresumed workflows fold into this restart's resume
        # set (the old resume event is cancelled), instead of the two
        # resumes racing and double-submitting the same workflows.
        if self._resume_handle is not None:
            self._resume_handle.cancel()
            self._resume_handle = None
        carried = [
            state
            for state in self._pending_resume
            if not state.record.phase.is_terminal()
        ]
        states = carried + states
        self._pending_resume = states
        resumed = [state.workflow.name for state in states]

        def _resume() -> None:
            self._pending_resume = []
            self._resume_handle = None
            for state in states:
                # Resumes in place: callers keep holding the same record.
                self.submit(state.workflow, record=state.record)
                self._states[state.workflow.name].on_complete.extend(
                    state.on_complete
                )

        self._resume_handle = self.clock.schedule(downtime, _resume)
        self._notify_peers()
        return resumed

    def hard_kill(self) -> List[str]:
        """Kill the controller with no graceful teardown (chaos path).

        Unlike :meth:`simulate_restart`, *nothing* is journaled — this
        models a replica vanishing mid-run.  Scheduled callbacks and
        attempt completions are cancelled, the cluster garbage-collects
        the orphaned pods (allocations are released), and every run
        state is dropped.  Only a journal-backed deployment can recover:
        :meth:`resume_from_journal` on a fresh replica replays the
        stream, and the materializer folds each started-but-unsettled
        attempt as lost (``ReplicaLostErr``, one budget-free infra
        failure, zero charges).  Returns the names of the workflows that
        died with the replica.
        """
        killed = sorted(self._states)
        for state in self._states.values():
            for handle in state.pending_handles:
                handle.cancel()
            state.pending_handles.clear()
            for attempt in state.active_attempts.values():
                attempt.handle.cancel()
                attempt.pod.phase = PodPhase.FAILED
                attempt.pod.reason = "ReplicaLost"
                self.scheduler.release(attempt.pod)
            state.active_attempts.clear()
        if self._resume_handle is not None:
            self._resume_handle.cancel()
            self._resume_handle = None
        self._pending_resume = []
        self._states.clear()
        self._resource_waitq = []
        self._waitq_dirty()
        self._m_waitq.set(0)
        self._notify_peers()
        return killed

    def resume_from_journal(self, names: Optional[List[str]] = None) -> List[str]:
        """Resume workflows by replaying the journal (fresh-replica path).

        For each stream (all of them, or just ``names``): rebuild the
        executable workflow from the spec embedded in its first
        ``submitted`` record, materialize its :class:`WorkflowRecord`
        from the event fold, and resubmit unless the workflow is already
        active here or the journal proves it finished.  This is what a
        replacement replica does after a shard reassignment — it needs
        nothing but the journal.  Returns the resumed names.
        """
        if self.journal is None:
            raise ValueError("resume_from_journal requires a journal-backed operator")
        resumed: List[str] = []
        for stream in self.journal.streams() if names is None else names:
            if stream in self._states:
                continue
            workflow = self.journal.workflow_spec(stream)
            if workflow is None:
                continue  # decision-log-only stream: nothing submitted yet
            record = self.journal.materialize(stream)
            if record is None or record.phase.is_terminal():
                continue
            self.submit(workflow, record=record)
            resumed.append(stream)
        return resumed

    # ------------------------------------------------------------ inspection

    def active_workflows(self) -> List[str]:
        return sorted(self._states)

    def waiting_steps(self) -> List[Tuple[str, str]]:
        """(workflow, step) pairs currently queued for cluster resources."""
        return list(self._resource_waitq)

    def run_to_completion(self, until: Optional[float] = None) -> None:
        """Advance the clock until all submitted workflows settle."""
        self.clock.run(until=until)
