"""Unified engine configuration for the v1 facade (``EngineConfig``).

The v1 submitters accreted per-feature keyword arguments as each
subsystem landed — ``journaled=`` (PR 7), ``fairness=`` / ``slo_class=``
(PR 6), the backpressure and aging knobs on the pipeline, ``scorer=``
on the cache manager.  :class:`EngineConfig` consolidates that surface
into one keyword-only dataclass accepted by every submitter
constructor (``config=EngineConfig(...)``), validated at construction
time with :class:`~repro.engine.spec.SpecError` naming the offending
field.  The legacy kwargs keep working through a once-warning
deprecation bridge on each submitter; both spellings are proven
equivalent by ``tests/test_engine_config.py``.

``engine`` selects the hot-path implementation: ``"fast"`` (the
default — incremental indexes, coalesced drains, parked placement
candidates) or ``"naive"`` (the straight-line reference paths the
``engine_fast`` verify oracle diffs against).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Dict, Optional, Set

from .spec import SpecError

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from ..control.policy import PolicyConfig

#: Valid values for :attr:`EngineConfig.engine`.
ENGINE_MODES = ("fast", "naive")
#: Valid values for :attr:`EngineConfig.scorer` (cache score engine).
SCORER_MODES = ("incremental", "naive")
#: Fairness policies the config accepts (mirrors the registry in
#: :mod:`repro.engine.fairness`; ``None`` = pipeline default).
FAIRNESS_POLICIES = ("strict-priority", "weighted-fair", "drf")

#: ``EngineConfig.<field>`` legacy spellings that already warned — the
#: deprecation bridge warns once per process, mirroring the submitter
#: bridge in :mod:`repro.core.submitter`.
_legacy_warned: Set[str] = set()


@dataclass(frozen=True)
class EngineConfig:
    """One validated bundle of engine/submitter knobs.

    Every field has the subsystem's historical default, so
    ``EngineConfig()`` is exactly the legacy no-kwargs behaviour.
    """

    #: Hot-path implementation: ``"fast"`` or ``"naive"``.
    engine: str = "fast"
    #: Append every step/admission event to a durable journal.
    journaled: bool = False
    #: Cross-tenant ordering policy (``None`` = strict-priority).
    fairness: Optional[str] = None
    #: SLO lane for submissions (``None`` = the pipeline default lane).
    slo_class: Optional[str] = None
    #: Fairness weights per tenant (entitlement multipliers).
    tenant_weights: Optional[Dict[str, float]] = None
    #: Checkpoint-evict over-share batch work for blocked serving work.
    preemption: bool = False
    #: Per-workflow eviction budget when ``preemption`` is on.
    max_preemptions: int = 2
    #: Post-restore re-eviction cooldown (virtual seconds).
    preempt_cooldown: float = 60.0
    #: Keep CPU-only filler off GPU clusters (needs a fairness policy).
    protect_gpu: bool = False
    #: Bounded admission queue depth (``None`` = unbounded).
    max_pending: Optional[int] = None
    #: Effective-priority points per second of queue wait.
    #: *Deprecated spelling* — the knob moved to
    #: :attr:`PolicyConfig.aging_rate`; customising it here warns once
    #: per process and will be removed in v2.
    aging_rate: float = 0.0
    #: Gate placement on admission headroom (capacity minus reservations).
    require_capacity: bool = True
    #: Cache score engine: ``"incremental"`` or ``"naive"``.
    scorer: str = "incremental"
    #: Adaptive policy knobs (:class:`~repro.control.policy.PolicyConfig`);
    #: ``None`` = the static paper defaults, bit-identical to
    #: ``policy=PolicyConfig()``.
    policy: Optional[PolicyConfig] = None

    def __post_init__(self) -> None:
        if self.engine not in ENGINE_MODES:
            raise SpecError(
                f"EngineConfig.engine must be one of {ENGINE_MODES}: {self.engine!r}"
            )
        if self.scorer not in SCORER_MODES:
            raise SpecError(
                f"EngineConfig.scorer must be one of {SCORER_MODES}: {self.scorer!r}"
            )
        if not isinstance(self.journaled, bool):
            raise SpecError(
                f"EngineConfig.journaled must be a bool: {self.journaled!r}"
            )
        if self.fairness is not None and self.fairness not in FAIRNESS_POLICIES:
            raise SpecError(
                f"EngineConfig.fairness must be one of {FAIRNESS_POLICIES} "
                f"or None: {self.fairness!r}"
            )
        if self.slo_class is not None and (
            not isinstance(self.slo_class, str) or not self.slo_class
        ):
            raise SpecError(
                f"EngineConfig.slo_class must be a non-empty lane name or "
                f"None: {self.slo_class!r}"
            )
        if self.protect_gpu and self.fairness is None:
            raise SpecError(
                "EngineConfig.protect_gpu requires a fairness policy "
                "(set fairness='weighted-fair' or 'drf' — GPU protection "
                "redirects placement across tenants)"
            )
        if self.tenant_weights is not None:
            for user, weight in self.tenant_weights.items():
                if weight <= 0:
                    raise SpecError(
                        f"EngineConfig.tenant_weights[{user!r}] must be "
                        f"> 0: {weight}"
                    )
        if self.max_pending is not None and self.max_pending < 1:
            raise SpecError(
                f"EngineConfig.max_pending must be >= 1 or None: {self.max_pending}"
            )
        if self.aging_rate < 0:
            raise SpecError(
                f"EngineConfig.aging_rate must be >= 0: {self.aging_rate}"
            )
        if self.max_preemptions < 0:
            raise SpecError(
                f"EngineConfig.max_preemptions must be >= 0: {self.max_preemptions}"
            )
        if self.preempt_cooldown < 0:
            raise SpecError(
                f"EngineConfig.preempt_cooldown must be >= 0: "
                f"{self.preempt_cooldown}"
            )
        if not self.preemption and (
            self.max_preemptions != 2 or self.preempt_cooldown != 60.0
        ):
            raise SpecError(
                "EngineConfig.preemption is off but max_preemptions / "
                "preempt_cooldown were customised — set preemption=True"
            )
        if self.policy is not None:
            from ..control.policy import PolicyConfig

            if not isinstance(self.policy, PolicyConfig):
                raise SpecError(
                    f"EngineConfig.policy must be a PolicyConfig or None: "
                    f"{self.policy!r}"
                )
            if self.aging_rate != 0.0:
                raise SpecError(
                    "EngineConfig: pass policy=PolicyConfig(aging_rate=...) "
                    "or the legacy aging_rate= kwarg, not both"
                )
        elif self.aging_rate != 0.0:
            key = "EngineConfig.aging_rate"
            if key not in _legacy_warned:
                _legacy_warned.add(key)
                warnings.warn(
                    "EngineConfig(aging_rate=...) is deprecated and will be "
                    "removed in v2; pass policy=PolicyConfig(aging_rate=...) "
                    "instead",
                    DeprecationWarning,
                    stacklevel=3,
                )

    # ------------------------------------------------------------- helpers

    @property
    def fast(self) -> bool:
        """True when the fast hot paths are selected."""
        return self.engine == "fast"

    @property
    def effective_aging_rate(self) -> float:
        """The aging rate after policy resolution (policy wins; mixing
        was already rejected at construction)."""
        if self.policy is not None:
            return self.policy.aging_rate
        return self.aging_rate

    def effective_policy(self) -> PolicyConfig:
        """The adaptive policy in force (defaults when ``policy=None``)."""
        from ..control.policy import PolicyConfig

        if self.policy is not None:
            return self.policy
        if self.aging_rate != 0.0:
            return PolicyConfig(aging_rate=self.aging_rate)
        return PolicyConfig()

    def pipeline_kwargs(self) -> Dict[str, object]:
        """Keyword arguments for :class:`AdmissionPipeline`.

        ``fairness=None`` resolves to the pipeline's back-compat
        ``strict-priority`` default, matching the legacy kwarg surface.
        A customised retry budget on ``policy`` threads through as a
        ``RetryPolicy`` for every cluster operator; the default budget
        passes ``None`` so the operator builds its own (bit-identical).
        """
        retry_policy = None
        if self.policy is not None:
            default = type(self.policy)()
            if (self.policy.retry_limit, self.policy.infra_retry_limit) != (
                default.retry_limit,
                default.infra_retry_limit,
            ):
                retry_policy = self.policy.retry_policy()
        return {
            "fairness": self.fairness or "strict-priority",
            "tenant_weights": (
                dict(self.tenant_weights) if self.tenant_weights else None
            ),
            "preemption": self.preemption,
            "max_preemptions": self.max_preemptions,
            "preempt_cooldown": self.preempt_cooldown,
            "protect_gpu": self.protect_gpu,
            "max_pending": self.max_pending,
            "aging_rate": self.effective_aging_rate,
            "require_capacity": self.require_capacity,
            "retry_policy": retry_policy,
            "fast": self.fast,
        }

    def describe(self) -> str:
        """Compact one-line summary (non-default fields only)."""
        default = EngineConfig()
        parts = [
            f"{f.name}={getattr(self, f.name)!r}"
            for f in fields(self)
            if getattr(self, f.name) != getattr(default, f.name)
        ]
        return f"EngineConfig({', '.join(parts)})" if parts else "EngineConfig()"


#: The all-defaults config — exactly the legacy no-kwargs behaviour.
DEFAULT_CONFIG: EngineConfig = EngineConfig()

__all__ = ["EngineConfig", "DEFAULT_CONFIG", "ENGINE_MODES", "SCORER_MODES"]
