"""Sharded multi-replica operator fleet over one shared journal.

The scale-out story of the journal-backed engine: ``N`` stateless
:class:`~repro.engine.operator.WorkflowOperator` replicas share one
cluster, one :class:`~repro.engine.simclock.SimClock` and one
:class:`~repro.engine.journal.Journal`.  Each workflow is hash-assigned
to exactly one replica (``crc32(name) % N`` — *not* Python's salted
``hash``, so the assignment is stable across processes), every replica
journals its transitions into the shared log, and any replica can die
and be replaced by a fresh one that resumes its shard purely by
replaying the journal.

Two properties the verify/chaos gates pin:

* **Output equivalence** — for deterministic workloads, the fleet's
  per-workflow outcomes (statuses, results, lineage) are identical to a
  single in-memory operator's, regardless of replica count.  Scheduling
  order may differ (replicas drain their own wait queues), which is why
  the comparison uses the scheduling-independent outputs view.
* **Replay recovery** — hard-killing a replica mid-run loses nothing
  that matters: a replacement built from the journal alone reaches the
  same terminal outputs, and the whole scenario is deterministic under
  the same seed.

Cross-replica wakeups: each operator only drains its *own* resource
wait queue, so the fleet installs a ``peer_wakeup`` hook — whenever one
replica frees cluster resources, the others get a drain pass scheduled
(in replica-index order, for determinism).
"""

from __future__ import annotations

import zlib
from typing import Callable, Dict, List, Optional

from ..k8s.cluster import Cluster
from ..obs.metrics import MetricsRegistry
from .journal import Journal
from .operator import CompletionCallback, WorkflowOperator
from .simclock import SimClock
from .spec import ExecutableWorkflow
from .status import WorkflowRecord


def shard_of(name: str, replicas: int) -> int:
    """Stable workflow → replica assignment (crc32, process-independent)."""
    return zlib.crc32(name.encode("utf-8")) % replicas


class ShardedOperatorFleet:
    """N shard-assigned operator replicas driving one cluster."""

    def __init__(
        self,
        clock: SimClock,
        cluster: Cluster,
        replicas: int = 2,
        journal: Optional[Journal] = None,
        seed: int = 0,
        metrics: Optional[MetricsRegistry] = None,
        operator_factory: Optional[Callable[..., WorkflowOperator]] = None,
        **operator_kwargs: object,
    ) -> None:
        if replicas < 1:
            raise ValueError(f"fleet needs at least one replica: {replicas}")
        self.clock = clock
        self.cluster = cluster
        self.journal = journal if journal is not None else Journal(metrics=metrics)
        self._factory = operator_factory or WorkflowOperator
        self._operator_kwargs = dict(operator_kwargs)
        self._seed = seed
        self._metrics = metrics
        self.replicas: List[WorkflowOperator] = [
            self._build_replica() for _ in range(replicas)
        ]

    def _build_replica(self) -> WorkflowOperator:
        operator = self._factory(
            self.clock,
            self.cluster,
            seed=self._seed,
            journal=self.journal,
            metrics=self._metrics,
            **self._operator_kwargs,
        )
        operator.peer_wakeup = self._make_wakeup(operator)
        return operator

    def _make_wakeup(self, source: WorkflowOperator) -> Callable[[], None]:
        def wake() -> None:
            for peer in self.replicas:
                if peer is not source:
                    self.clock.schedule(0.0, peer._drain_waitq)

        return wake

    # -------------------------------------------------------------- routing

    def shard_of(self, name: str) -> int:
        return shard_of(name, len(self.replicas))

    def operator_for(self, name: str) -> WorkflowOperator:
        return self.replicas[self.shard_of(name)]

    def shard_streams(self, index: int) -> List[str]:
        """Journal streams hash-assigned to replica ``index``."""
        return [
            stream
            for stream in self.journal.streams()
            if self.shard_of(stream) == index
        ]

    # ----------------------------------------------------------- submission

    def submit(
        self,
        workflow: ExecutableWorkflow,
        record: Optional[WorkflowRecord] = None,
        on_complete: Optional[CompletionCallback] = None,
        initial_results: Optional[Dict[str, Optional[str]]] = None,
    ) -> WorkflowRecord:
        """Route a submission to its shard's replica."""
        return self.operator_for(workflow.name).submit(
            workflow,
            record=record,
            on_complete=on_complete,
            initial_results=initial_results,
        )

    # ---------------------------------------------------------------- chaos

    def kill_replica(self, index: int) -> List[str]:
        """Hard-kill one replica (nothing journaled, pods GC'd).

        The dead operator object stays in the slot so stale clock events
        hit its ``_is_live`` guards and no-op; :meth:`resume_replica`
        swaps in a fresh replacement.  Returns the workflows that died.
        """
        return self.replicas[index].hard_kill()

    def resume_replica(self, index: int) -> List[str]:
        """Replace replica ``index`` with a fresh one resumed from journal.

        The replacement is built exactly like the original — it shares
        nothing with the dead replica but the journal, which is the
        point: resuming its shard's streams proves the engine state is
        fully journal-derived.  Returns the resumed workflow names.
        """
        replacement = self._build_replica()
        self.replicas[index] = replacement
        return replacement.resume_from_journal(names=self.shard_streams(index))

    # ------------------------------------------------------------ inspection

    def active_workflows(self) -> List[str]:
        names: List[str] = []
        for operator in self.replicas:
            names.extend(operator.active_workflows())
        return sorted(names)

    def records_by_name(self) -> Dict[str, WorkflowRecord]:
        """Latest completed record per workflow, across all replicas."""
        records: Dict[str, WorkflowRecord] = {}
        for operator in self.replicas:
            for record in operator.completed:
                records[record.name] = record
        return records

    def run_to_completion(self, until: Optional[float] = None) -> None:
        self.clock.run(until=until)
