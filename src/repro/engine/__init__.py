"""Discrete-event workflow engine: the simulated Argo-style operator.

Executes :class:`~repro.engine.spec.ExecutableWorkflow` DAGs on a
simulated cluster with resource contention, input-fetch modelling via
the caching layer, failure injection, retries, and restart-from-failure.
"""

from .admission import AdmissionError, AdmissionPipeline, AdmissionRecord
from .cachehooks import BandwidthModel, CacheManagerProtocol, NullCacheManager
from .dispatcher import DispatchResult, MultiClusterDispatcher
from .fairness import (
    DEFAULT_SLO_CLASS,
    FAIRNESS_REGISTRY,
    SLO_BATCH,
    SLO_SERVING,
    DRFPolicy,
    FairnessError,
    FairnessPolicy,
    LaneConfig,
    StrictPriorityPolicy,
    TenantShares,
    WeightedFairPolicy,
    default_lanes,
    make_fairness_policy,
)
from .journal import (
    REPLICA_LOST_ERR,
    Journal,
    JournalError,
    JournalRecord,
    demote_running_steps,
)
from .metrics import UtilizationRecorder, UtilizationSample
from .operator import WorkflowOperator, validate_when_expr
from .queue import (
    DeferredDequeue,
    MultiClusterQueue,
    QueuedWorkflow,
    QuotaError,
    UserQuota,
)
from .replicas import ShardedOperatorFleet, shard_of
from .retry import (
    FATAL_PATTERNS,
    INFRA_PATTERNS,
    FailureInjector,
    RETRYABLE_PATTERNS,
    RetryPolicy,
    is_infra,
    is_retryable,
)
from .simclock import EventHandle, SimClock, SimulationError
from .spec import (
    ArtifactSpec,
    ExecutableStep,
    ExecutableWorkflow,
    FailureProfile,
    SpecError,
    parse_argo_manifest,
    step_profile_annotation,
)
from .status import StepRecord, StepStatus, WorkflowPhase, WorkflowRecord

__all__ = [
    "AdmissionError",
    "AdmissionPipeline",
    "AdmissionRecord",
    "ArtifactSpec",
    "BandwidthModel",
    "CacheManagerProtocol",
    "DEFAULT_SLO_CLASS",
    "DRFPolicy",
    "DeferredDequeue",
    "DispatchResult",
    "EventHandle",
    "FAIRNESS_REGISTRY",
    "MultiClusterDispatcher",
    "ExecutableStep",
    "ExecutableWorkflow",
    "FATAL_PATTERNS",
    "INFRA_PATTERNS",
    "FailureInjector",
    "FailureProfile",
    "FairnessError",
    "FairnessPolicy",
    "Journal",
    "JournalError",
    "JournalRecord",
    "LaneConfig",
    "MultiClusterQueue",
    "REPLICA_LOST_ERR",
    "ShardedOperatorFleet",
    "SLO_BATCH",
    "SLO_SERVING",
    "StrictPriorityPolicy",
    "TenantShares",
    "WeightedFairPolicy",
    "default_lanes",
    "make_fairness_policy",
    "NullCacheManager",
    "QueuedWorkflow",
    "QuotaError",
    "RETRYABLE_PATTERNS",
    "RetryPolicy",
    "SimClock",
    "SimulationError",
    "SpecError",
    "StepRecord",
    "StepStatus",
    "UserQuota",
    "UtilizationRecorder",
    "UtilizationSample",
    "WorkflowOperator",
    "WorkflowPhase",
    "WorkflowRecord",
    "demote_running_steps",
    "is_infra",
    "is_retryable",
    "parse_argo_manifest",
    "shard_of",
    "step_profile_annotation",
    "validate_when_expr",
]
