"""Discrete-event workflow engine: the simulated Argo-style operator.

Executes :class:`~repro.engine.spec.ExecutableWorkflow` DAGs on a
simulated cluster with resource contention, input-fetch modelling via
the caching layer, failure injection, retries, and restart-from-failure.
"""

from .admission import AdmissionError, AdmissionPipeline, AdmissionRecord
from .cachehooks import BandwidthModel, CacheManagerProtocol, NullCacheManager
from .dispatcher import DispatchResult, MultiClusterDispatcher
from .metrics import UtilizationRecorder, UtilizationSample
from .operator import WorkflowOperator, validate_when_expr
from .queue import (
    DeferredDequeue,
    MultiClusterQueue,
    QueuedWorkflow,
    QuotaError,
    UserQuota,
)
from .retry import (
    FATAL_PATTERNS,
    INFRA_PATTERNS,
    FailureInjector,
    RETRYABLE_PATTERNS,
    RetryPolicy,
    is_infra,
    is_retryable,
)
from .simclock import EventHandle, SimClock, SimulationError
from .spec import (
    ArtifactSpec,
    ExecutableStep,
    ExecutableWorkflow,
    FailureProfile,
    SpecError,
    parse_argo_manifest,
    step_profile_annotation,
)
from .status import StepRecord, StepStatus, WorkflowPhase, WorkflowRecord

__all__ = [
    "AdmissionError",
    "AdmissionPipeline",
    "AdmissionRecord",
    "ArtifactSpec",
    "BandwidthModel",
    "CacheManagerProtocol",
    "DeferredDequeue",
    "DispatchResult",
    "EventHandle",
    "MultiClusterDispatcher",
    "ExecutableStep",
    "ExecutableWorkflow",
    "FATAL_PATTERNS",
    "INFRA_PATTERNS",
    "FailureInjector",
    "FailureProfile",
    "MultiClusterQueue",
    "NullCacheManager",
    "QueuedWorkflow",
    "QuotaError",
    "RETRYABLE_PATTERNS",
    "RetryPolicy",
    "SimClock",
    "SimulationError",
    "SpecError",
    "StepRecord",
    "StepStatus",
    "UserQuota",
    "UtilizationRecorder",
    "UtilizationSample",
    "WorkflowOperator",
    "WorkflowPhase",
    "WorkflowRecord",
    "is_infra",
    "is_retryable",
    "parse_argo_manifest",
    "step_profile_annotation",
    "validate_when_expr",
]
