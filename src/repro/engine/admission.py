"""Continuous, arrival-driven admission & scheduling (the online path).

The batch :class:`~repro.engine.dispatcher.MultiClusterDispatcher`
placed every queued workflow up front and ran the clock to quiescence —
fine for replaying a fixed fleet, useless for a service where workflows
*arrive over time*.  This module is the event-driven replacement:

* Workflows arrive as clock events (open-loop arrival traces from
  :mod:`repro.workloads.arrivals`, or ad-hoc ``submit()`` calls).
* **Admission control** applies bounded-queue backpressure: when the
  pending queue is full, the arrival is rejected (shed) instead of
  growing the backlog without bound; permanently infeasible work
  (demand no cluster or quota grant can ever hold) is rejected at the
  door instead of waiting forever.
* **Placement is incremental**: each workflow completion releases its
  quota charge and admission reservation and immediately triggers a
  re-placement pass, so deferred work starts the moment capacity
  frees — there are no global retry rounds.
* **Priority aging** raises a waiting workflow's effective priority by
  ``aging_rate`` points per queued second, so a low-priority tenant
  cannot be starved indefinitely by a stream of high-priority arrivals.
* **Fairness & SLO lanes** (:mod:`repro.engine.fairness`): each pass
  places SLO lanes in order (``serving`` before ``batch``) and sorts
  within a lane by a pluggable :class:`FairnessPolicy` — the default
  ``strict-priority`` reproduces the aged-priority sort bit-for-bit,
  while ``weighted-fair`` / ``drf`` order tenants by live weighted
  share so no priority stream can starve an idle tenant.  With
  ``preemption=True``, serving-lane work blocked on headroom may
  checkpoint-evict over-share batch-lane workflows, which resume from
  their surviving record (possibly on another cluster).

Every admission decision (admit / reject / place / defer / complete)
is counted in the shared metrics registry and visible to the tracer,
and the pipeline reuses :class:`~repro.engine.queue.MultiClusterQueue`
for quota accounting, reservations and placement scoring — so the
chaos invariant checker's conservation sweep applies unchanged.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from ..k8s.cluster import Cluster
from ..obs.metrics import SHARE_BUCKETS, MetricsRegistry
from ..obs.trace import NullTracer
from .fairness import (
    DEFAULT_SLO_CLASS,
    FairnessPolicy,
    LaneConfig,
    TenantShares,
    default_lanes,
    make_fairness_policy,
)
from .journal import Journal
from .operator import WorkflowOperator
from .queue import DeferredDequeue, MultiClusterQueue, QueuedWorkflow, QuotaError, UserQuota
from .simclock import SimClock
from .spec import ExecutableWorkflow
from .status import WorkflowRecord


class AdmissionError(RuntimeError):
    """Raised on admission misuse (duplicate names, bad arrival times)."""


@dataclass
class AdmissionRecord:
    """The full lifecycle of one submission through the pipeline.

    Live-updated: callers keep the object returned by ``submit*()`` and
    watch it progress.  ``queue_latency`` — the service-level metric the
    benchmark tracks — is the arrival→placement wait.
    """

    workflow_name: str
    user: str
    priority: int
    arrival_time: float
    admitted: Optional[bool] = None
    reject_reason: Optional[str] = None
    admit_time: Optional[float] = None
    place_time: Optional[float] = None
    finish_time: Optional[float] = None
    cluster_name: Optional[str] = None
    record: Optional[WorkflowRecord] = None
    #: Placement passes that looked at this workflow and left it queued.
    deferrals: int = 0
    #: SLO lane the submission rides in (``serving`` / ``batch``).
    slo_class: str = DEFAULT_SLO_CLASS
    #: Times this workflow was checkpoint-evicted for an over-share tenant.
    preemptions: int = 0
    #: When a previously-preempted workflow was last restored (placed
    #: again).  The preemption victim search skips workflows inside
    #: their post-restore cooldown window, so a victim that just paid
    #: the checkpoint/migration cost cannot be evicted again before it
    #: makes any progress (eviction thrash).
    restored_at: Optional[float] = None
    #: Caller hook fired when the workflow completes (after the
    #: pipeline's own release/wake bookkeeping).  Submitting from the
    #: hook is legal — this is how multi-statement scripts chain
    #: statement N+1 onto statement N's completion.
    on_complete: Optional[Callable[[WorkflowRecord], None]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def queue_latency(self) -> Optional[float]:
        if self.place_time is None:
            return None
        return self.place_time - self.arrival_time

    def effective_priority(self, now: float, aging_rate: float) -> float:
        """Base priority plus the age bonus earned while waiting."""
        return self.priority + aging_rate * max(0.0, now - self.arrival_time)


@dataclass
class _Pending:
    """One admitted-but-unplaced workflow in the admission queue."""

    seq: int
    queued: QueuedWorkflow
    admission: AdmissionRecord
    #: Placement-pass epoch at which this candidate was parked (fast
    #: mode).  Passes that ran while parked are credited as deferrals
    #: in bulk when the candidate wakes, so the journaled deferral
    #: count matches the naive try-everything-every-pass path exactly.
    parked_at_epoch: int = 0


class AdmissionPipeline:
    """Arrival-driven admission control + incremental placement."""

    def __init__(
        self,
        clusters: List[Cluster],
        quotas: Optional[Dict[str, UserQuota]] = None,
        seed: int = 0,
        clock: Optional[SimClock] = None,
        max_pending: Optional[int] = None,
        aging_rate: float = 0.0,
        require_capacity: bool = True,
        tracer: Optional[object] = None,
        metrics: Optional[MetricsRegistry] = None,
        fairness: Union[str, FairnessPolicy, None] = "strict-priority",
        tenant_weights: Optional[Dict[str, float]] = None,
        lanes: Optional[Dict[str, LaneConfig]] = None,
        preemption: bool = False,
        max_preemptions: int = 2,
        preempt_cooldown: float = 60.0,
        protect_gpu: bool = False,
        fast: bool = True,
        journal: Optional[Journal] = None,
        cache_manager: Optional[object] = None,
        skip_cached_steps: bool = False,
        retry_policy: Optional[object] = None,
    ) -> None:
        if not clusters:
            raise ValueError("admission pipeline needs at least one cluster")
        if max_pending is not None and max_pending < 1:
            raise ValueError(f"max_pending must be >= 1 or None: {max_pending}")
        if aging_rate < 0:
            raise ValueError(f"aging_rate must be >= 0: {aging_rate}")
        if max_preemptions < 0:
            raise ValueError(f"max_preemptions must be >= 0: {max_preemptions}")
        if preempt_cooldown < 0:
            raise ValueError(f"preempt_cooldown must be >= 0: {preempt_cooldown}")
        self.clock = clock or SimClock()
        #: Shared journal: admission decisions land in each workflow's
        #: stream as ``admission-*`` marker records (pure decision log —
        #: the materializer ignores them), and every per-cluster
        #: operator journals its step events into the same log.
        self.journal = journal
        self.queue = MultiClusterQueue(
            clusters=clusters, quotas=dict(quotas or {}), protect_gpu=protect_gpu
        )
        self.tracer = tracer if tracer is not None else NullTracer()
        self.metrics = metrics or MetricsRegistry()
        #: Fast mode parks placement-blocked candidates on wait lists
        #: keyed by what could unblock them instead of re-trying every
        #: pending workflow on every pass; ``fast=False`` is the naive
        #: reference path the ``engine_fast`` verify oracle diffs
        #: against.  The flag threads through to each cluster operator.
        self.fast = fast
        #: Optional artifact cache shared by every cluster operator —
        #: cross-workflow reuse (paper Sec. V.B) then applies to
        #: admission-placed work, not just direct operator submissions.
        self.cache_manager = cache_manager
        self.operators: Dict[str, WorkflowOperator] = {
            cluster.name: WorkflowOperator(
                self.clock,
                cluster,
                cache_manager=cache_manager,
                retry_policy=retry_policy,
                seed=seed,
                skip_cached_steps=skip_cached_steps,
                tracer=self.tracer,
                metrics=self.metrics,
                journal=self.journal,
                fast=fast,
            )
            for cluster in clusters
        }
        #: Bounded admission queue depth (None = unbounded).
        self.max_pending = max_pending
        #: Effective-priority points gained per second of queue wait.
        self.aging_rate = aging_rate
        #: Gate placement on admission headroom (total capacity minus
        #: peak reservations).  Off, the operator wait queues absorb the
        #: overflow — the legacy batch-dispatch behaviour.
        self.require_capacity = require_capacity
        #: Cross-tenant ordering policy within each lane.
        self.fairness = make_fairness_policy(fairness)
        #: SLO lanes, placed in ``order`` within every pass.
        self.lanes: Dict[str, LaneConfig] = dict(lanes) if lanes else default_lanes()
        for name, lane in self.lanes.items():
            if name != lane.name:
                raise ValueError(f"lane key {name!r} != LaneConfig.name {lane.name!r}")
        self._lane_order = sorted(
            self.lanes.values(), key=lambda lane: (lane.order, lane.name)
        )
        #: Checkpoint-evict over-share preemptible work for blocked
        #: ``can_preempt``-lane arrivals (off by default: back-compat).
        self.preemption = preemption
        self.max_preemptions = max_preemptions
        #: Virtual seconds a restored preemption victim is ineligible
        #: for re-eviction, so migration cost is amortised by progress.
        self.preempt_cooldown = preempt_cooldown
        #: Live weighted tenant shares over fleet capacity, read by the
        #: fairness policies and the preemption victim search.
        self.shares = TenantShares(
            self.queue.fleet_capacity(), self.queue.tenant_usage, tenant_weights
        )

        #: Admitted, not yet placed — ordered at each pass by the
        #: fairness policy (strict-priority = aged priority, the seed sort).
        #: In fast mode this holds only the *active* candidates; blocked
        #: ones park on the wait lists below until a release could
        #: plausibly unblock them.
        self._pending: List[_Pending] = []
        #: Candidates blocked on their own tenant's quota, woken when a
        #: workflow of that tenant releases its charge.
        self._parked_user: Dict[str, List[_Pending]] = {}
        #: Candidates blocked on cluster headroom, woken by any release.
        self._parked_headroom: List[_Pending] = []
        #: Pending wake requests, drained at the next pass (so a burst
        #: of same-instant releases costs one unpark-merge, not one per
        #: release).
        self._wake_headroom = False
        self._wake_users: set = set()
        #: Placement passes run so far — the deferral-crediting epoch.
        self._epoch = 0
        #: Incremental depth bookkeeping (active + parked), replacing
        #: O(pending) scans in arrival checks and gauge updates.
        self._pending_total = 0
        self._lane_counts: Dict[str, int] = {name: 0 for name in self.lanes}
        self._seq = itertools.count()
        self._pass_scheduled = False
        #: Placed-and-running submissions by workflow name (preemption pool).
        self._running: Dict[str, _Pending] = {}
        #: Every submission's admission record, in arrival-schedule order.
        self.records: List[AdmissionRecord] = []
        #: Placed workflows in placement order (the dispatch history).
        self.placed: List[AdmissionRecord] = []

        self._m_events = self.metrics.counter(
            "admission_events_total", "Scheduler pipeline events by kind"
        )
        self._m_rejected = self.metrics.counter(
            "admission_rejected_total", "Arrivals shed at admission, by reason"
        )
        self._m_depth = self.metrics.gauge(
            "admission_pending_depth", "Admitted workflows awaiting placement"
        )
        self._m_lane_depth = self.metrics.gauge(
            "admission_lane_depth", "Pending depth per SLO lane"
        )
        self._m_latency = self.metrics.histogram(
            "admission_queue_latency_seconds", "Arrival-to-placement wait"
        )
        self._m_preempted = self.metrics.counter(
            "admission_preemptions_total", "Checkpoint evictions by victim tenant"
        )
        self._m_share = self.metrics.gauge(
            "admission_tenant_dominant_share", "Weighted dominant share per tenant"
        )
        self._m_share_hist = self.metrics.histogram(
            "admission_tenant_share_at_placement",
            "Tenant dominant share observed at each placement",
            buckets=SHARE_BUCKETS,
        )

    # ------------------------------------------------------------- journaling

    def _journal_event(
        self, admission: AdmissionRecord, kind: str, **payload: object
    ) -> None:
        """Append an ``admission-*`` decision record to the workflow's stream."""
        if self.journal is None:
            return
        self.journal.append(
            admission.workflow_name,
            kind,
            self.clock.now,
            payload={"user": admission.user, "lane": admission.slo_class, **payload},
        )

    # ------------------------------------------------------------- submission

    def _resolve_lane(self, slo_class: Optional[str], workflow_name: str) -> str:
        resolved = slo_class if slo_class is not None else DEFAULT_SLO_CLASS
        if resolved not in self.lanes:
            raise AdmissionError(
                f"workflow {workflow_name}: unknown slo_class {resolved!r}; "
                f"configured lanes: {sorted(self.lanes)}"
            )
        return resolved

    def submit_at(
        self,
        at: float,
        workflow: ExecutableWorkflow,
        user: str = "default",
        priority: int = 0,
        slo_class: Optional[str] = None,
        on_complete: Optional[Callable[[WorkflowRecord], None]] = None,
    ) -> AdmissionRecord:
        """Schedule ``workflow`` to arrive at virtual time ``at``.

        Returns the live :class:`AdmissionRecord`; arrival, admission
        and placement happen as clock events when the simulation runs.
        ``on_complete`` fires when the workflow finishes (never for
        rejected submissions) — submitting follow-up work from it is
        supported.
        """
        if at < self.clock.now:
            raise AdmissionError(
                f"workflow {workflow.name}: arrival at {at} is in the past "
                f"(now={self.clock.now})"
            )
        admission = AdmissionRecord(
            workflow_name=workflow.name,
            user=user,
            priority=priority,
            arrival_time=at,
            slo_class=self._resolve_lane(slo_class, workflow.name),
            on_complete=on_complete,
        )
        queued = QueuedWorkflow(workflow=workflow, user=user, priority=priority)
        self.records.append(admission)
        self.clock.schedule_at(at, lambda: self._on_arrival(queued, admission))
        return admission

    def submit(
        self,
        workflow: ExecutableWorkflow,
        user: str = "default",
        priority: int = 0,
        slo_class: Optional[str] = None,
    ) -> AdmissionRecord:
        """Arrival right now (service-style ``submit`` call)."""
        return self.submit_at(
            self.clock.now, workflow, user=user, priority=priority, slo_class=slo_class
        )

    def submit_arrivals(
        self,
        arrivals: Iterable[Tuple[float, ExecutableWorkflow]],
        user: str = "default",
        priority: int = 0,
        slo_class: Optional[str] = None,
    ) -> List[AdmissionRecord]:
        """Schedule a whole open-loop trace of (time, workflow) pairs."""
        return [
            self.submit_at(
                at, workflow, user=user, priority=priority, slo_class=slo_class
            )
            for at, workflow in arrivals
        ]

    # -------------------------------------------------------------- admission

    def _reject(self, admission: AdmissionRecord, reason: str, label: str) -> None:
        admission.admitted = False
        admission.reject_reason = reason
        self._m_events.inc(event="rejection")
        self._m_rejected.inc(reason=label)
        self._journal_event(admission, "admission-rejected", reason=reason)
        self.tracer.instant(
            "admission-reject",
            "admission",
            self.clock.now,
            workflow=admission.workflow_name,
            user=admission.user,
            reason=reason,
        )

    def _never_placeable(self, queued: QueuedWorkflow) -> Optional[str]:
        """A reason this workflow can never place, or None if it can.

        Checked once at arrival so the pending queue only ever holds
        work that *will* eventually run — which is what makes the
        completion-triggered re-placement wakeup sufficient (no
        deadlocked waiters, no polling).
        """
        demand = queued.peak_demand()
        feasible = [
            cluster
            for cluster in self.queue.clusters
            if not (demand.gpu > 0 and cluster.capacity.gpu == 0)
        ]
        if not feasible:
            return f"no cluster can host its demand {demand}"
        if self.require_capacity and not any(
            demand.fits_within(cluster.capacity) for cluster in feasible
        ):
            return f"demand {demand} exceeds every cluster's total capacity"
        quota = self.queue.quotas.get(queued.user)
        if quota is not None and (
            demand.cpu > quota.cpu_limit
            or demand.memory > quota.memory_limit
            or demand.gpu > quota.gpu_limit
        ):
            return f"demand {demand} exceeds user {queued.user}'s quota grant"
        return None

    def _on_arrival(self, queued: QueuedWorkflow, admission: AdmissionRecord) -> None:
        self._m_events.inc(event="arrival")
        reason = self._never_placeable(queued)
        if reason is not None:
            self._reject(admission, reason, label="infeasible")
            return
        if self.max_pending is not None and self._pending_total >= self.max_pending:
            self._reject(
                admission,
                f"admission queue full ({self.max_pending} pending)",
                label="queue-full",
            )
            return
        lane = self.lanes[admission.slo_class]
        if (
            lane.max_pending is not None
            and self._lane_counts[lane.name] >= lane.max_pending
        ):
            self._reject(
                admission,
                f"{lane.name} lane full ({lane.max_pending} pending)",
                label="lane-full",
            )
            return
        admission.admitted = True
        admission.admit_time = self.clock.now
        self._m_events.inc(event="admit")
        self._journal_event(admission, "admission-admitted", priority=admission.priority)
        self._pending.append(
            _Pending(seq=next(self._seq), queued=queued, admission=admission)
        )
        self._track_pending(admission, 1)
        self._set_depth_gauges()
        self._schedule_pass()

    # -------------------------------------------------------------- placement

    def _schedule_pass(self) -> None:
        """Coalesce placement work into one pass per virtual instant.

        Simultaneous arrivals (a batch submitted at the same timestamp)
        are all admitted before the pass fires, so placement order is
        decided by aged priority across the whole batch — not by
        arrival sequence within it.
        """
        if self._pass_scheduled:
            return
        self._pass_scheduled = True
        self.clock.schedule(0.0, self._placement_pass)

    def _track_pending(self, admission: AdmissionRecord, delta: int) -> None:
        self._pending_total += delta
        self._lane_counts[admission.slo_class] += delta

    def _set_depth_gauges(self) -> None:
        self._m_depth.set(self._pending_total)
        for lane in self._lane_order:
            self._m_lane_depth.set(self._lane_counts[lane.name], lane=lane.name)

    def _parked_count(self) -> int:
        return len(self._parked_headroom) + sum(
            len(parked) for parked in self._parked_user.values()
        )

    def _all_pending(self) -> List[_Pending]:
        """Active + parked candidates merged back into seq order."""
        if not self._parked_headroom and not self._parked_user:
            return self._pending
        merged = list(self._pending)
        merged.extend(self._parked_headroom)
        for parked in self._parked_user.values():
            merged.extend(parked)
        merged.sort(key=lambda p: p.seq)
        return merged

    def _credit_parked(self, pending: _Pending) -> None:
        """Credit the deferrals a parked candidate skipped observing.

        The naive path tries every pending candidate on every pass and
        bumps ``deferrals`` each time it stays queued; a parked
        candidate missed ``epoch - parked_at_epoch`` such passes.  The
        per-pass deferral *metric* is bulk-incremented at pass time, so
        only the admission record needs back-filling here.
        """
        missed = self._epoch - pending.parked_at_epoch
        if missed > 0:
            pending.admission.deferrals += missed

    def _wake_parked(self, user: str) -> None:
        """Request a wake-up for candidates a release may have unblocked.

        A quota release frees headroom on some cluster too (the charge
        and the reservation travel together), so every headroom-parked
        candidate is due; quota-parked candidates wake only when
        *their* tenant released.  The actual unpark-merge is deferred
        to the start of the next placement pass — passes are already
        coalesced per virtual instant, so a burst of same-instant
        completions costs one merge instead of one sort per release.
        """
        self._wake_headroom = True
        self._wake_users.add(user)

    def _maybe_placeable(self, pending: _Pending) -> bool:
        """Necessary condition for a headroom-parked candidate to place.

        Mirrors (a superset of) :meth:`MultiClusterQueue.try_place`'s
        headroom gate: some GPU-feasible cluster must fit the peak
        demand.  Headroom only shrinks *within* a pass (placements
        consume, releases are separate clock events), so fitting at
        pass start is implied by fitting at the candidate's mid-pass
        turn — a candidate this filter keeps parked could never have
        placed in the naive pass either.
        """
        demand = pending.queued.peak_demand()
        needs_gpu = demand.gpu > 0
        for cluster in self.queue.clusters:
            if needs_gpu and cluster.capacity.gpu == 0:
                continue
            if demand.fits_within(self.queue.headroom(cluster)):
                return True
        return False

    def _drain_wakes(self) -> None:
        """Unpark every candidate with a pending wake (pass start)."""
        woken: List[_Pending] = []
        if self._wake_headroom:
            still_parked: List[_Pending] = []
            for pending in self._parked_headroom:
                if self._maybe_placeable(pending):
                    woken.append(pending)
                else:
                    still_parked.append(pending)
            self._parked_headroom = still_parked
        for user in self._wake_users:
            woken.extend(self._parked_user.pop(user, ()))
        self._wake_headroom = False
        self._wake_users.clear()
        if not woken:
            return
        for pending in woken:
            self._credit_parked(pending)
        self._pending.extend(woken)
        self._pending.sort(key=lambda p: p.seq)

    def _lane_aging_rate(self, lane: LaneConfig) -> float:
        return lane.aging_rate if lane.aging_rate is not None else self.aging_rate

    def _placement_pass(self) -> None:
        self._pass_scheduled = False
        if self._pending_total == 0:
            return
        self._drain_wakes()
        self._m_events.inc(event="pass")
        self._epoch += 1
        parked = self._parked_count()
        if parked:
            # The naive path re-tries every parked candidate this pass
            # and defers it again; account those trials in bulk so the
            # deferral counter matches without the O(pending) scan.
            self._m_events.inc(parked, event="deferral")
        now = self.clock.now
        still_pending: List[_Pending] = []
        #: can_preempt-lane work blocked on headroom (not quota) this pass.
        preempt_candidates: List[_Pending] = []
        for lane in self._lane_order:
            aging_rate = self._lane_aging_rate(lane)
            candidates = sorted(
                (p for p in self._pending if p.admission.slo_class == lane.name),
                key=lambda p: self.fairness.key(
                    p.admission,
                    p.seq,
                    now=now,
                    aging_rate=aging_rate,
                    shares=self.shares,
                ),
            )
            # Preemption needs the highest-ranked blocked can_preempt
            # candidate *every* pass, so those lanes never park.
            may_park = self.fast and not (lane.can_preempt and self.preemption)
            for pending in candidates:
                try:
                    placed = self.queue.try_place(
                        pending.queued, require_capacity=self.require_capacity
                    )
                except QuotaError as exc:
                    # Feasibility was vetted at arrival, so this is a quota
                    # grant shrinking mid-flight or direct queue misuse —
                    # shed the workflow rather than wait on a wakeup that
                    # cannot come.
                    self._reject(pending.admission, str(exc), label="infeasible")
                    self._track_pending(pending.admission, -1)
                    continue
                if isinstance(placed, DeferredDequeue):
                    pending.admission.deferrals += 1
                    self._m_events.inc(event="deferral")
                    if may_park:
                        # Placeability is monotone until a release: more
                        # placements only consume capacity.  Park until
                        # the release that could unblock this candidate.
                        pending.parked_at_epoch = self._epoch
                        if placed.kind == "quota":
                            self._parked_user.setdefault(
                                pending.queued.user, []
                            ).append(pending)
                        else:
                            self._parked_headroom.append(pending)
                    else:
                        still_pending.append(pending)
                    if lane.can_preempt and placed.kind == "headroom":
                        preempt_candidates.append(pending)
                    continue
                _, cluster = placed
                self._track_pending(pending.admission, -1)
                self._start(pending, cluster)
        still_pending.sort(key=lambda p: p.seq)
        self._pending = still_pending
        self._set_depth_gauges()
        if self.preemption and preempt_candidates:
            # Evict for the highest-ranked blocked serving workflow only;
            # the wakeup pass re-sorts and may place the rest.
            if self._preempt_for(preempt_candidates[0]):
                self._schedule_pass()

    # ------------------------------------------------------------- preemption

    def _preempt_for(self, blocked: _Pending) -> int:
        """Checkpoint-evict over-share preemptible work to fit ``blocked``.

        Victims are running workflows in a ``preemptible`` lane owned by
        a *different* tenant whose weighted dominant share exceeds the
        blocked tenant's — i.e. preemption only ever transfers capacity
        down the share order, so it converges instead of thrashing.
        Restored victims are additionally protected by a re-preemption
        cooldown (``preempt_cooldown`` virtual seconds after being
        placed again): without it, the same over-share workflow is
        evicted the moment it resumes, repaying its checkpoint and
        migration cost with zero forward progress, over and over, until
        ``max_preemptions`` finally fails it out of the victim pool.
        Returns the number of victims evicted.
        """
        now = self.clock.now
        demand = blocked.queued.peak_demand()
        feasible = [
            cluster
            for cluster in self.queue.clusters
            if not (demand.gpu > 0 and cluster.capacity.gpu == 0)
            and demand.fits_within(cluster.capacity)
        ]
        if not feasible:
            return 0

        def fits_somewhere() -> bool:
            return any(
                demand.fits_within(self.queue.headroom(cluster))
                for cluster in feasible
            )

        feasible_names = {cluster.name for cluster in feasible}
        blocked_share = self.shares.dominant_share(blocked.admission.user)
        victims = [
            running
            for running in self._running.values()
            if self.lanes[running.admission.slo_class].preemptible
            and running.admission.user != blocked.admission.user
            and running.admission.preemptions < self.max_preemptions
            # Evicting work on a cluster the blocked demand can never
            # use frees nothing for it — only victims on feasible
            # clusters count.
            and running.admission.cluster_name in feasible_names
            and running.admission.record is not None
            and not running.admission.record.phase.is_terminal()
            # Re-preemption cooldown: a just-restored victim gets
            # ``preempt_cooldown`` virtual seconds to make progress
            # before it is eligible again.
            and (
                running.admission.restored_at is None
                or now - running.admission.restored_at >= self.preempt_cooldown
            )
            and self.shares.dominant_share(running.admission.user) > blocked_share
        ]
        victims.sort(
            key=lambda p: (
                -self.shares.dominant_share(p.admission.user),
                -(p.admission.place_time or 0.0),
                p.admission.workflow_name,
            )
        )
        evicted = 0
        for victim in victims:
            if fits_somewhere() or evicted >= 4:
                break
            if self._preempt(victim):
                evicted += 1
        return evicted

    def _preempt(self, victim: _Pending) -> bool:
        """Checkpoint one running workflow back into the pending queue.

        The operator interrupts in-flight attempts (refunding unspent
        charges, billing infra — never app — failure budget), the queue
        refunds the quota charge and reservation, and the admission
        record re-enters ``_pending`` with a fresh sequence number so it
        resumes — possibly on a *different* cluster (checkpoint
        migration) — from its surviving :class:`WorkflowRecord`.
        """
        admission = victim.admission
        cluster_name = admission.cluster_name
        if cluster_name is None:
            return False
        record = self.operators[cluster_name].checkpoint_workflow(
            admission.workflow_name
        )
        if record is None:
            return False
        self.queue.release(victim.queued)
        self._wake_parked(victim.queued.user)
        self._running.pop(admission.workflow_name, None)
        if admission in self.placed:
            self.placed.remove(admission)
        admission.record = record
        admission.preemptions += 1
        admission.place_time = None
        admission.cluster_name = None
        self._m_events.inc(event="preemption")
        self._m_preempted.inc(tenant=admission.user)
        self._journal_event(
            admission,
            "admission-preempted",
            cluster=cluster_name,
            preemptions=admission.preemptions,
        )
        self.tracer.instant(
            "admission-preempt",
            "admission",
            self.clock.now,
            workflow=admission.workflow_name,
            user=admission.user,
            cluster=cluster_name,
            preemptions=admission.preemptions,
        )
        self._pending.append(
            _Pending(seq=next(self._seq), queued=victim.queued, admission=admission)
        )
        self._track_pending(admission, 1)
        self._set_depth_gauges()
        return True

    def _start(self, pending: _Pending, cluster: Cluster) -> None:
        admission = pending.admission
        admission.place_time = self.clock.now
        admission.cluster_name = cluster.name
        if admission.preemptions > 0:
            admission.restored_at = self.clock.now
        self._m_events.inc(event="placement")
        self._journal_event(
            admission,
            "admission-placed",
            cluster=cluster.name,
            deferrals=admission.deferrals,
        )
        self._m_latency.observe(admission.queue_latency)
        if admission.queue_latency > 0:
            self.tracer.add_span(
                "admission-queue",
                "admission",
                admission.arrival_time,
                self.clock.now,
                workflow=admission.workflow_name,
                user=admission.user,
                cluster=cluster.name,
                deferrals=admission.deferrals,
            )
        operator = self.operators[cluster.name]
        admission.record = operator.submit(
            pending.queued.workflow,
            record=admission.record,
            on_complete=lambda record: self._on_completion(pending, record),
        )
        self._running[admission.workflow_name] = pending
        self.placed.append(admission)
        self._m_share.set(
            self.shares.dominant_share(admission.user), tenant=admission.user
        )
        self._m_share_hist.observe(
            self.shares.dominant_share(admission.user), lane=admission.slo_class
        )

    def _on_completion(self, pending: _Pending, record: WorkflowRecord) -> None:
        """A workflow finished: free its charges and re-attempt placement.

        This is the event that replaces the batch dispatcher's retry
        rounds — every completion releases quota and admission headroom
        and immediately wakes the placement pass.
        """
        self.queue.release(pending.queued)
        self._wake_parked(pending.queued.user)
        self._running.pop(pending.admission.workflow_name, None)
        pending.admission.finish_time = self.clock.now
        self._m_events.inc(event="completion")
        self._journal_event(
            pending.admission, "admission-finished", phase=record.phase.value
        )
        self._m_share.set(
            self.shares.dominant_share(pending.admission.user),
            tenant=pending.admission.user,
        )
        if pending.admission.on_complete is not None:
            # After release/wake bookkeeping, so follow-up submissions
            # made from the hook see the freed quota and headroom.
            pending.admission.on_complete(record)
        self._schedule_pass()

    # ------------------------------------------------------------------ drive

    def run(self, until: Optional[float] = None) -> float:
        """Advance the shared clock until arrivals and work drain."""
        return self.clock.run(until=until)

    def cancel_pending(self) -> List[QueuedWorkflow]:
        """Remove and return everything still awaiting placement.

        For batch-compat callers: after a drained run, whatever is left
        can never place until *new* quota appears (its owner's grant is
        exhausted by nothing currently running), so the batch wrapper
        surfaces it instead of leaving it parked.
        """
        for pending in self._parked_headroom:
            self._credit_parked(pending)
        for parked in self._parked_user.values():
            for pending in parked:
                self._credit_parked(pending)
        stuck = [pending.queued for pending in self._all_pending()]
        self._pending = []
        self._parked_user.clear()
        self._parked_headroom = []
        self._wake_headroom = False
        self._wake_users.clear()
        self._pending_total = 0
        self._lane_counts = {name: 0 for name in self.lanes}
        self._set_depth_gauges()
        return stuck

    # ------------------------------------------------------------- inspection

    def pending_workflows(self) -> List[str]:
        """Names of admitted workflows still awaiting placement."""
        return [pending.queued.workflow.name for pending in self._all_pending()]

    def rejected(self) -> List[AdmissionRecord]:
        return [record for record in self.records if record.admitted is False]

    def completed_records(self) -> List[WorkflowRecord]:
        """Workflow records of every placed submission, placement order."""
        return [
            admission.record
            for admission in self.placed
            if admission.record is not None
        ]

    def queue_latencies(self) -> List[float]:
        """Arrival-to-placement waits of all placed workflows."""
        return [
            admission.queue_latency
            for admission in self.placed
            if admission.queue_latency is not None
        ]

    def _waits(self) -> List[Tuple[str, float]]:
        """(user, wait) pairs: placed latencies plus live pending waits.

        Pending waits use ``now - arrival_time`` — the workflow still
        sitting in the queue is the one actually starving, and leaving
        it out until it lands (the pre-fix behaviour) made the gap
        metric blind to exactly the victims it exists to expose.
        """
        now = self.clock.now
        waits = [
            (admission.user, admission.queue_latency)
            for admission in self.placed
            if admission.queue_latency is not None
        ]
        waits.extend(
            (p.admission.user, max(0.0, now - p.admission.arrival_time))
            for p in self._all_pending()
        )
        return waits

    def starvation_gap(self) -> float:
        """The worst arrival-to-placement wait seen so far (seconds).

        Includes workflows still pending (wait measured to ``now``), so
        a starving queue shows a growing gap *before* anything lands.
        """
        return max((wait for _, wait in self._waits()), default=0.0)

    def tenant_starvation_gaps(self) -> Dict[str, float]:
        """Per-tenant worst wait (placed or still pending), by user."""
        gaps: Dict[str, float] = {}
        for user, wait in self._waits():
            if wait > gaps.get(user, -1.0):
                gaps[user] = wait
        return gaps

    def tenant_queue_latencies(self) -> Dict[str, List[float]]:
        """Placed arrival-to-placement waits grouped by tenant."""
        latencies: Dict[str, List[float]] = {}
        for admission in self.placed:
            if admission.queue_latency is not None:
                latencies.setdefault(admission.user, []).append(
                    admission.queue_latency
                )
        return latencies
