"""Continuous, arrival-driven admission & scheduling (the online path).

The batch :class:`~repro.engine.dispatcher.MultiClusterDispatcher`
placed every queued workflow up front and ran the clock to quiescence —
fine for replaying a fixed fleet, useless for a service where workflows
*arrive over time*.  This module is the event-driven replacement:

* Workflows arrive as clock events (open-loop arrival traces from
  :mod:`repro.workloads.arrivals`, or ad-hoc ``submit()`` calls).
* **Admission control** applies bounded-queue backpressure: when the
  pending queue is full, the arrival is rejected (shed) instead of
  growing the backlog without bound; permanently infeasible work
  (demand no cluster or quota grant can ever hold) is rejected at the
  door instead of waiting forever.
* **Placement is incremental**: each workflow completion releases its
  quota charge and admission reservation and immediately triggers a
  re-placement pass, so deferred work starts the moment capacity
  frees — there are no global retry rounds.
* **Priority aging** raises a waiting workflow's effective priority by
  ``aging_rate`` points per queued second, so a low-priority tenant
  cannot be starved indefinitely by a stream of high-priority arrivals.

Every admission decision (admit / reject / place / defer / complete)
is counted in the shared metrics registry and visible to the tracer,
and the pipeline reuses :class:`~repro.engine.queue.MultiClusterQueue`
for quota accounting, reservations and placement scoring — so the
chaos invariant checker's conservation sweep applies unchanged.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..k8s.cluster import Cluster
from ..obs.metrics import MetricsRegistry
from ..obs.trace import NullTracer
from .operator import WorkflowOperator
from .queue import DeferredDequeue, MultiClusterQueue, QueuedWorkflow, QuotaError, UserQuota
from .simclock import SimClock
from .spec import ExecutableWorkflow
from .status import WorkflowRecord


class AdmissionError(RuntimeError):
    """Raised on admission misuse (duplicate names, bad arrival times)."""


@dataclass
class AdmissionRecord:
    """The full lifecycle of one submission through the pipeline.

    Live-updated: callers keep the object returned by ``submit*()`` and
    watch it progress.  ``queue_latency`` — the service-level metric the
    benchmark tracks — is the arrival→placement wait.
    """

    workflow_name: str
    user: str
    priority: int
    arrival_time: float
    admitted: Optional[bool] = None
    reject_reason: Optional[str] = None
    admit_time: Optional[float] = None
    place_time: Optional[float] = None
    finish_time: Optional[float] = None
    cluster_name: Optional[str] = None
    record: Optional[WorkflowRecord] = None
    #: Placement passes that looked at this workflow and left it queued.
    deferrals: int = 0

    @property
    def queue_latency(self) -> Optional[float]:
        if self.place_time is None:
            return None
        return self.place_time - self.arrival_time

    def effective_priority(self, now: float, aging_rate: float) -> float:
        """Base priority plus the age bonus earned while waiting."""
        return self.priority + aging_rate * max(0.0, now - self.arrival_time)


@dataclass
class _Pending:
    """One admitted-but-unplaced workflow in the admission queue."""

    seq: int
    queued: QueuedWorkflow
    admission: AdmissionRecord


class AdmissionPipeline:
    """Arrival-driven admission control + incremental placement."""

    def __init__(
        self,
        clusters: List[Cluster],
        quotas: Optional[Dict[str, UserQuota]] = None,
        seed: int = 0,
        clock: Optional[SimClock] = None,
        max_pending: Optional[int] = None,
        aging_rate: float = 0.0,
        require_capacity: bool = True,
        tracer: Optional[object] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if not clusters:
            raise ValueError("admission pipeline needs at least one cluster")
        if max_pending is not None and max_pending < 1:
            raise ValueError(f"max_pending must be >= 1 or None: {max_pending}")
        if aging_rate < 0:
            raise ValueError(f"aging_rate must be >= 0: {aging_rate}")
        self.clock = clock or SimClock()
        self.queue = MultiClusterQueue(clusters=clusters, quotas=dict(quotas or {}))
        self.tracer = tracer if tracer is not None else NullTracer()
        self.metrics = metrics or MetricsRegistry()
        self.operators: Dict[str, WorkflowOperator] = {
            cluster.name: WorkflowOperator(
                self.clock, cluster, seed=seed, tracer=self.tracer, metrics=self.metrics
            )
            for cluster in clusters
        }
        #: Bounded admission queue depth (None = unbounded).
        self.max_pending = max_pending
        #: Effective-priority points gained per second of queue wait.
        self.aging_rate = aging_rate
        #: Gate placement on admission headroom (total capacity minus
        #: peak reservations).  Off, the operator wait queues absorb the
        #: overflow — the legacy batch-dispatch behaviour.
        self.require_capacity = require_capacity

        #: Admitted, not yet placed — ordered at each pass by aged priority.
        self._pending: List[_Pending] = []
        self._seq = itertools.count()
        self._pass_scheduled = False
        #: Every submission's admission record, in arrival-schedule order.
        self.records: List[AdmissionRecord] = []
        #: Placed workflows in placement order (the dispatch history).
        self.placed: List[AdmissionRecord] = []

        self._m_events = self.metrics.counter(
            "admission_events_total", "Scheduler pipeline events by kind"
        )
        self._m_rejected = self.metrics.counter(
            "admission_rejected_total", "Arrivals shed at admission, by reason"
        )
        self._m_depth = self.metrics.gauge(
            "admission_pending_depth", "Admitted workflows awaiting placement"
        )
        self._m_latency = self.metrics.histogram(
            "admission_queue_latency_seconds", "Arrival-to-placement wait"
        )

    # ------------------------------------------------------------- submission

    def submit_at(
        self,
        at: float,
        workflow: ExecutableWorkflow,
        user: str = "default",
        priority: int = 0,
    ) -> AdmissionRecord:
        """Schedule ``workflow`` to arrive at virtual time ``at``.

        Returns the live :class:`AdmissionRecord`; arrival, admission
        and placement happen as clock events when the simulation runs.
        """
        if at < self.clock.now:
            raise AdmissionError(
                f"workflow {workflow.name}: arrival at {at} is in the past "
                f"(now={self.clock.now})"
            )
        admission = AdmissionRecord(
            workflow_name=workflow.name,
            user=user,
            priority=priority,
            arrival_time=at,
        )
        queued = QueuedWorkflow(workflow=workflow, user=user, priority=priority)
        self.records.append(admission)
        self.clock.schedule_at(at, lambda: self._on_arrival(queued, admission))
        return admission

    def submit(
        self,
        workflow: ExecutableWorkflow,
        user: str = "default",
        priority: int = 0,
    ) -> AdmissionRecord:
        """Arrival right now (service-style ``submit`` call)."""
        return self.submit_at(self.clock.now, workflow, user=user, priority=priority)

    def submit_arrivals(
        self,
        arrivals: Iterable[Tuple[float, ExecutableWorkflow]],
        user: str = "default",
        priority: int = 0,
    ) -> List[AdmissionRecord]:
        """Schedule a whole open-loop trace of (time, workflow) pairs."""
        return [
            self.submit_at(at, workflow, user=user, priority=priority)
            for at, workflow in arrivals
        ]

    # -------------------------------------------------------------- admission

    def _reject(self, admission: AdmissionRecord, reason: str, label: str) -> None:
        admission.admitted = False
        admission.reject_reason = reason
        self._m_events.inc(event="rejection")
        self._m_rejected.inc(reason=label)
        self.tracer.instant(
            "admission-reject",
            "admission",
            self.clock.now,
            workflow=admission.workflow_name,
            user=admission.user,
            reason=reason,
        )

    def _never_placeable(self, queued: QueuedWorkflow) -> Optional[str]:
        """A reason this workflow can never place, or None if it can.

        Checked once at arrival so the pending queue only ever holds
        work that *will* eventually run — which is what makes the
        completion-triggered re-placement wakeup sufficient (no
        deadlocked waiters, no polling).
        """
        demand = queued.peak_demand()
        feasible = [
            cluster
            for cluster in self.queue.clusters
            if not (demand.gpu > 0 and cluster.capacity.gpu == 0)
        ]
        if not feasible:
            return f"no cluster can host its demand {demand}"
        if self.require_capacity and not any(
            demand.fits_within(cluster.capacity) for cluster in feasible
        ):
            return f"demand {demand} exceeds every cluster's total capacity"
        quota = self.queue.quotas.get(queued.user)
        if quota is not None and (
            demand.cpu > quota.cpu_limit
            or demand.memory > quota.memory_limit
            or demand.gpu > quota.gpu_limit
        ):
            return f"demand {demand} exceeds user {queued.user}'s quota grant"
        return None

    def _on_arrival(self, queued: QueuedWorkflow, admission: AdmissionRecord) -> None:
        self._m_events.inc(event="arrival")
        reason = self._never_placeable(queued)
        if reason is not None:
            self._reject(admission, reason, label="infeasible")
            return
        if self.max_pending is not None and len(self._pending) >= self.max_pending:
            self._reject(
                admission,
                f"admission queue full ({self.max_pending} pending)",
                label="queue-full",
            )
            return
        admission.admitted = True
        admission.admit_time = self.clock.now
        self._m_events.inc(event="admit")
        self._pending.append(
            _Pending(seq=next(self._seq), queued=queued, admission=admission)
        )
        self._m_depth.set(len(self._pending))
        self._schedule_pass()

    # -------------------------------------------------------------- placement

    def _schedule_pass(self) -> None:
        """Coalesce placement work into one pass per virtual instant.

        Simultaneous arrivals (a batch submitted at the same timestamp)
        are all admitted before the pass fires, so placement order is
        decided by aged priority across the whole batch — not by
        arrival sequence within it.
        """
        if self._pass_scheduled:
            return
        self._pass_scheduled = True
        self.clock.schedule(0.0, self._placement_pass)

    def _placement_pass(self) -> None:
        self._pass_scheduled = False
        if not self._pending:
            return
        self._m_events.inc(event="pass")
        now = self.clock.now
        candidates = sorted(
            self._pending,
            key=lambda p: (
                -p.admission.effective_priority(now, self.aging_rate),
                p.seq,
            ),
        )
        still_pending: List[_Pending] = []
        for pending in candidates:
            try:
                placed = self.queue.try_place(
                    pending.queued, require_capacity=self.require_capacity
                )
            except QuotaError as exc:
                # Feasibility was vetted at arrival, so this is a quota
                # grant shrinking mid-flight or direct queue misuse —
                # shed the workflow rather than wait on a wakeup that
                # cannot come.
                self._reject(pending.admission, str(exc), label="infeasible")
                continue
            if isinstance(placed, DeferredDequeue):
                pending.admission.deferrals += 1
                self._m_events.inc(event="deferral")
                still_pending.append(pending)
                continue
            _, cluster = placed
            self._start(pending, cluster)
        still_pending.sort(key=lambda p: p.seq)
        self._pending = still_pending
        self._m_depth.set(len(self._pending))

    def _start(self, pending: _Pending, cluster: Cluster) -> None:
        admission = pending.admission
        admission.place_time = self.clock.now
        admission.cluster_name = cluster.name
        self._m_events.inc(event="placement")
        self._m_latency.observe(admission.queue_latency)
        if admission.queue_latency > 0:
            self.tracer.add_span(
                "admission-queue",
                "admission",
                admission.arrival_time,
                self.clock.now,
                workflow=admission.workflow_name,
                user=admission.user,
                cluster=cluster.name,
                deferrals=admission.deferrals,
            )
        operator = self.operators[cluster.name]
        admission.record = operator.submit(
            pending.queued.workflow,
            on_complete=lambda record: self._on_completion(pending, record),
        )
        self.placed.append(admission)

    def _on_completion(self, pending: _Pending, record: WorkflowRecord) -> None:
        """A workflow finished: free its charges and re-attempt placement.

        This is the event that replaces the batch dispatcher's retry
        rounds — every completion releases quota and admission headroom
        and immediately wakes the placement pass.
        """
        self.queue.release(pending.queued)
        pending.admission.finish_time = self.clock.now
        self._m_events.inc(event="completion")
        self._schedule_pass()

    # ------------------------------------------------------------------ drive

    def run(self, until: Optional[float] = None) -> float:
        """Advance the shared clock until arrivals and work drain."""
        return self.clock.run(until=until)

    def cancel_pending(self) -> List[QueuedWorkflow]:
        """Remove and return everything still awaiting placement.

        For batch-compat callers: after a drained run, whatever is left
        can never place until *new* quota appears (its owner's grant is
        exhausted by nothing currently running), so the batch wrapper
        surfaces it instead of leaving it parked.
        """
        stuck = [pending.queued for pending in self._pending]
        self._pending = []
        self._m_depth.set(0)
        return stuck

    # ------------------------------------------------------------- inspection

    def pending_workflows(self) -> List[str]:
        """Names of admitted workflows still awaiting placement."""
        return [pending.queued.workflow.name for pending in self._pending]

    def rejected(self) -> List[AdmissionRecord]:
        return [record for record in self.records if record.admitted is False]

    def completed_records(self) -> List[WorkflowRecord]:
        """Workflow records of every placed submission, placement order."""
        return [
            admission.record
            for admission in self.placed
            if admission.record is not None
        ]

    def queue_latencies(self) -> List[float]:
        """Arrival-to-placement waits of all placed workflows."""
        return [
            admission.queue_latency
            for admission in self.placed
            if admission.queue_latency is not None
        ]

    def starvation_gap(self) -> float:
        """The worst arrival-to-placement wait seen so far (seconds)."""
        return max(self.queue_latencies(), default=0.0)
