"""Step and workflow status model (mirrors Argo's phase vocabulary).

The restart-from-failure path in the paper (Appendix B.B) skips steps
whose status is ``Succeeded``, ``Skipped`` or ``Cached``; those statuses
are first-class here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional


class StepStatus(str, Enum):
    PENDING = "Pending"
    RUNNING = "Running"
    SUCCEEDED = "Succeeded"
    FAILED = "Failed"
    SKIPPED = "Skipped"
    CACHED = "Cached"

    def is_terminal(self) -> bool:
        return self in (
            StepStatus.SUCCEEDED,
            StepStatus.FAILED,
            StepStatus.SKIPPED,
            StepStatus.CACHED,
        )

    def counts_as_done(self) -> bool:
        """Statuses a restarted workflow may skip (paper Appendix B.B)."""
        return self in (StepStatus.SUCCEEDED, StepStatus.SKIPPED, StepStatus.CACHED)


class WorkflowPhase(str, Enum):
    PENDING = "Pending"
    RUNNING = "Running"
    SUCCEEDED = "Succeeded"
    FAILED = "Failed"

    def is_terminal(self) -> bool:
        return self in (WorkflowPhase.SUCCEEDED, WorkflowPhase.FAILED)


@dataclass
class StepRecord:
    """Execution record for one step of one workflow run."""

    name: str
    status: StepStatus = StepStatus.PENDING
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    attempts: int = 0
    #: Attempts lost to infrastructure faults (node loss, eviction,
    #: operator restart).  These count in ``attempts`` but are refunded
    #: when the retry policy sizes the step's application budget.
    infra_failures: int = 0
    #: Seconds spent fetching input artifacts (remote + local reads).
    fetch_seconds: float = 0.0
    #: Seconds of pure compute.
    compute_seconds: float = 0.0
    #: Input artifacts served from the cache vs. fetched remotely.
    cache_hits: int = 0
    cache_misses: int = 0
    last_error: Optional[str] = None

    @property
    def duration(self) -> Optional[float]:
        if self.start_time is None or self.finish_time is None:
            return None
        return self.finish_time - self.start_time


@dataclass
class WorkflowRecord:
    """Execution record for a whole workflow run."""

    name: str
    phase: WorkflowPhase = WorkflowPhase.PENDING
    steps: Dict[str, StepRecord] = field(default_factory=dict)
    submit_time: Optional[float] = None
    finish_time: Optional[float] = None
    #: ``result`` values of succeeded steps (None = no declared result).
    #: Persisted on the record so restart-from-failure and staged split
    #: execution can re-evaluate ``when`` guards against completed steps.
    results: Dict[str, Optional[str]] = field(default_factory=dict)

    @property
    def makespan(self) -> Optional[float]:
        if self.submit_time is None or self.finish_time is None:
            return None
        return self.finish_time - self.submit_time

    def step(self, name: str) -> StepRecord:
        if name not in self.steps:
            self.steps[name] = StepRecord(name=name)
        return self.steps[name]

    def total_cache_hits(self) -> int:
        return sum(s.cache_hits for s in self.steps.values())

    def total_cache_misses(self) -> int:
        return sum(s.cache_misses for s in self.steps.values())

    def cache_hit_ratio(self) -> float:
        hits, misses = self.total_cache_hits(), self.total_cache_misses()
        total = hits + misses
        return hits / total if total else 0.0

    def total_fetch_seconds(self) -> float:
        return sum(s.fetch_seconds for s in self.steps.values())

    def total_compute_seconds(self) -> float:
        return sum(s.compute_seconds for s in self.steps.values())
