"""Durable append-only event journal for the workflow engine.

The journal unifies three record streams that previously lived apart —
the admission decision log, the operator's step events, and the ad-hoc
``WorkflowRecord`` checkpoint snapshots — into one totally ordered
sequence of :class:`JournalRecord` entries.  Each workflow's records
form a *stream* (keyed by workflow name); replaying a stream's events
through :meth:`Journal.materialize` reconstructs the workflow's
:class:`~repro.engine.status.WorkflowRecord` exactly, so crash recovery
becomes *replay from the journal* rather than trusting whatever
in-memory snapshot survived.

Design properties:

* **Append-only, totally ordered.**  Records carry a global ``seq``;
  ``prefix(n)`` truncates to the first ``n`` records, and materializing
  any prefix yields a consistent, resumable record (the chaos gate
  replays killed replicas from arbitrary prefixes).
* **Idempotent appends (outbox semantics).**  An append carrying an
  ``event_id`` already present in the journal is dropped and returns
  ``None`` — duplicate delivery from an at-least-once producer cannot
  double-apply an event.
* **Self-contained streams.**  The first ``submitted`` record of a
  stream embeds the full executable spec
  (:func:`~repro.engine.spec.executable_to_dict`), so a *fresh* operator
  replica that never saw the original submission can rebuild both the
  workflow and its progress from the journal alone.
* **Charges are facts, not forecasts.**  The live operator pre-charges
  an attempt's full fetch/compute timeline at schedule time and refunds
  the un-elapsed part if the attempt is interrupted.  The journal only
  ever records *settled* charges (on completion or interruption), so a
  replay never needs the refund machinery — and an attempt that was
  started but never settled (its replica was hard-killed) materializes
  as a lost attempt: counted, one infra failure, zero charges.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..obs.metrics import MetricsRegistry
from .spec import ExecutableWorkflow, executable_from_dict
from .status import StepStatus, WorkflowPhase, WorkflowRecord

#: ``last_error`` recorded for an attempt whose replica vanished without
#: settling it (hard kill): the journal has ``attempt-started`` but no
#: completion/interruption record.  An infrastructure fault by
#: definition — it never charges the application retry budget.
REPLICA_LOST_ERR = "ReplicaLostErr"


class JournalError(ValueError):
    """Raised on journal misuse (unknown streams, malformed records)."""


def demote_running_steps(record: WorkflowRecord) -> List[str]:
    """Enforce the resume invariant: *a snapshot a resumed submission
    reads has no Running steps* — anything Running when the snapshot was
    cut died with its controller and must be re-attempted.

    Previously hand-rolled in both ``checkpoint_workflow`` and
    ``simulate_restart``; centralized here so every recovery path (and
    the journal materializer) shares one implementation.  Returns the
    demoted step names.
    """
    demoted: List[str] = []
    for step_record in record.steps.values():
        if step_record.status == StepStatus.RUNNING:
            step_record.status = StepStatus.PENDING
            demoted.append(step_record.name)
    return demoted


@dataclass(frozen=True)
class JournalRecord:
    """One immutable entry in the journal."""

    seq: int
    stream: str
    kind: str
    at: float
    payload: dict = field(default_factory=dict)
    event_id: Optional[str] = None

    def to_json(self) -> str:
        return json.dumps(
            {
                "seq": self.seq,
                "stream": self.stream,
                "kind": self.kind,
                "at": self.at,
                "payload": self.payload,
                "event_id": self.event_id,
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, line: str) -> "JournalRecord":
        data = json.loads(line)
        return cls(
            seq=data["seq"],
            stream=data["stream"],
            kind=data["kind"],
            at=data["at"],
            payload=data.get("payload") or {},
            event_id=data.get("event_id"),
        )


class Journal:
    """An ordered, append-only, idempotent event log."""

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self._records: List[JournalRecord] = []
        self._by_stream: Dict[str, List[JournalRecord]] = {}
        self._event_ids: Set[str] = set()
        self._m_appends = (
            metrics.counter("journal_records_total", "Journal appends by kind")
            if metrics is not None
            else None
        )

    # --------------------------------------------------------------- appends

    def append(
        self,
        stream: str,
        kind: str,
        at: float,
        payload: Optional[dict] = None,
        event_id: Optional[str] = None,
    ) -> Optional[JournalRecord]:
        """Append one record; returns it, or ``None`` for a duplicate.

        ``event_id`` gives the append outbox semantics: re-delivering an
        event already in the journal is a no-op, so an at-least-once
        producer can retry sends without double-applying.
        """
        if event_id is not None:
            if event_id in self._event_ids:
                return None
            self._event_ids.add(event_id)
        record = JournalRecord(
            seq=len(self._records),
            stream=stream,
            kind=kind,
            at=at,
            payload=payload or {},
            event_id=event_id,
        )
        self._records.append(record)
        self._by_stream.setdefault(stream, []).append(record)
        if self._m_appends is not None:
            self._m_appends.inc(kind=kind)
        return record

    # --------------------------------------------------------------- reading

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> List[JournalRecord]:
        return list(self._records)

    def streams(self) -> List[str]:
        """Stream names in first-append order."""
        return list(self._by_stream)

    def stream_records(
        self, stream: str, upto_seq: Optional[int] = None
    ) -> List[JournalRecord]:
        records = self._by_stream.get(stream, [])
        if upto_seq is None:
            return list(records)
        return [record for record in records if record.seq <= upto_seq]

    def prefix(self, n: int) -> "Journal":
        """A new journal holding only the first ``n`` records.

        This is what a replica that crashed mid-run left behind: the
        chaos gate materializes arbitrary prefixes and proves each one
        resumes to the same terminal digest.
        """
        clipped = Journal()
        for record in self._records[:n]:
            clipped.append(
                record.stream,
                record.kind,
                record.at,
                dict(record.payload),
                event_id=record.event_id,
            )
        return clipped

    # ----------------------------------------------------------- persistence

    def dump(self, path: str) -> int:
        """Write the journal as JSONL; returns the record count."""
        with open(path, "w", encoding="utf-8") as handle:
            for record in self._records:
                handle.write(record.to_json() + "\n")
        return len(self._records)

    @classmethod
    def load(cls, path: str) -> "Journal":
        journal = cls()
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = JournalRecord.from_json(line)
                journal.append(
                    record.stream,
                    record.kind,
                    record.at,
                    record.payload,
                    event_id=record.event_id,
                )
        return journal

    # ------------------------------------------------------- materialization

    def workflow_spec_dict(self, stream: str) -> Optional[dict]:
        """The spec dict embedded in the stream's first submission."""
        for record in self._by_stream.get(stream, []):
            if record.kind == "submitted" and "spec" in record.payload:
                return record.payload["spec"]
        return None

    def workflow_spec(self, stream: str) -> Optional[ExecutableWorkflow]:
        """Rebuild the stream's executable workflow from the journal."""
        spec = self.workflow_spec_dict(stream)
        if spec is None:
            return None
        return executable_from_dict(spec)

    def materialize(
        self, stream: str, upto_seq: Optional[int] = None
    ) -> Optional[WorkflowRecord]:
        """Fold a stream's events into a fresh :class:`WorkflowRecord`.

        Returns ``None`` when the stream holds no submission (e.g. only
        admission decisions so far).  The result is always resumable:
        attempts that were started but never settled are folded as lost
        (one infra failure, ``ReplicaLostErr``, zero charges), and no
        step is left Running.
        """
        if self.workflow_spec_dict(stream) is None:
            return None
        record = WorkflowRecord(name=stream)
        return self.materialize_into(stream, record, upto_seq=upto_seq)

    def materialize_into(
        self,
        stream: str,
        record: WorkflowRecord,
        upto_seq: Optional[int] = None,
    ) -> WorkflowRecord:
        """Fold a stream's events into an *existing* record, in place.

        Callers holding the record (admission records, fingerprint
        readers) keep their reference — the in-memory resume-in-place
        contract — while the content becomes exactly what the journal
        proves happened.
        """
        events = self.stream_records(stream, upto_seq=upto_seq)
        if not any(e.kind == "submitted" for e in events):
            raise JournalError(f"stream {stream!r} has no submission to replay")
        record.phase = WorkflowPhase.PENDING
        record.submit_time = None
        record.finish_time = None
        record.steps.clear()
        record.results.clear()
        step_names: List[str] = []
        #: Steps with a started-but-unsettled attempt (lost on hard kill).
        in_flight: Set[str] = set()

        for event in events:
            kind, payload, at = event.kind, event.payload, event.at
            if kind == "submitted":
                if "spec" in payload:
                    step_names = [s["name"] for s in payload["spec"]["steps"]]
                # A resubmit with attempts still unsettled means their
                # replica was hard-killed: settle them as lost *here*,
                # exactly as the resuming replica's prefix replay did,
                # so the full stream and the prefix agree.
                for name in sorted(in_flight):
                    step = record.step(name)
                    step.infra_failures += 1
                    step.last_error = REPLICA_LOST_ERR
                in_flight.clear()
                record.phase = WorkflowPhase.RUNNING
                record.submit_time = at
                record.finish_time = None
                for name in step_names:
                    step = record.step(name)
                    if not step.status.counts_as_done():
                        step.status = StepStatus.PENDING
                        step.last_error = None
                for name, value in (payload.get("initial_results") or {}).items():
                    record.results[name] = value
            elif kind == "attempt-started":
                step = record.step(payload["step"])
                step.attempts += 1
                step.status = StepStatus.RUNNING
                if step.start_time is None:
                    step.start_time = at
                in_flight.add(payload["step"])
            elif kind == "attempt-succeeded":
                step = record.step(payload["step"])
                in_flight.discard(step.name)
                step.status = StepStatus.SUCCEEDED
                step.finish_time = at
                step.fetch_seconds += payload["fetch"]
                step.compute_seconds += payload["compute"]
                step.cache_hits += payload["hits"]
                step.cache_misses += payload["misses"]
                record.results[step.name] = payload["result"]
            elif kind == "attempt-failed":
                step = record.step(payload["step"])
                in_flight.discard(step.name)
                step.last_error = payload["pattern"]
                if payload.get("infra"):
                    step.infra_failures += 1
                step.fetch_seconds += payload["fetch"]
                step.compute_seconds += payload["compute"]
                step.cache_hits += payload["hits"]
                step.cache_misses += payload["misses"]
                if payload.get("terminal"):
                    step.status = StepStatus.FAILED
                    step.finish_time = at
                # Non-terminal: Running through the backoff, like live.
            elif kind == "attempt-interrupted":
                step = record.step(payload["step"])
                in_flight.discard(step.name)
                step.infra_failures += 1
                step.last_error = payload["pattern"]
                step.fetch_seconds += payload["fetch"]
                step.compute_seconds += payload["compute"]
                step.cache_hits += payload["hits"]
                step.cache_misses += payload["misses"]
            elif kind == "step-skipped":
                step = record.step(payload["step"])
                step.status = StepStatus.SKIPPED
                step.start_time = at
                step.finish_time = at
            elif kind == "step-cached":
                step = record.step(payload["step"])
                step.status = StepStatus.CACHED
                step.start_time = at
                step.finish_time = at
            elif kind == "step-aborted":
                step = record.step(payload["step"])
                if not step.status.is_terminal():
                    step.status = StepStatus.FAILED
                    step.finish_time = at
            elif kind == "workflow-finished":
                record.phase = WorkflowPhase(payload["phase"])
                record.finish_time = at
            # "checkpointed" and "admission-*" records are markers for
            # the decision log; they carry no record state.

        # An attempt whose start was journaled but whose outcome never
        # was belonged to a hard-killed replica: the attempt happened
        # (it counts), the cause is infrastructure (budget-free), and
        # none of its charges settled.
        for name in sorted(in_flight):
            step = record.step(name)
            step.infra_failures += 1
            step.last_error = REPLICA_LOST_ERR
        demote_running_steps(record)
        return record
