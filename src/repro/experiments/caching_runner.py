"""Shared driver for the caching experiments (Figs. 7, 11–16).

Runs one scenario for ``iterations`` development rounds on a simulated
GPU cluster with a given cache policy and size, chaining the rounds
(iterative model development is sequential), and collects the
quantities the paper's figures plot: workflow execution time, CPU/GPU
utilization over time, cache hit ratio, and peak cache footprint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..caching.manager import CacheManager
from ..caching.score import ScoreWeights
from ..engine.metrics import UtilizationRecorder
from ..engine.operator import WorkflowOperator
from ..engine.simclock import SimClock
from ..engine.status import WorkflowPhase
from ..k8s.cluster import Cluster
from ..obs.metrics import MetricsRegistry
from ..obs.trace import Tracer
from ..workloads.scenarios import SCENARIOS, ScenarioSpec

GB = 2**30


@dataclass
class ScenarioRunResult:
    """Everything one (scenario, policy, cache size) run produced."""

    scenario: str
    policy: str
    cache_gb: Optional[float]
    iterations: int
    total_time_s: float
    mean_cpu_util: float
    mean_gpu_util: float
    hit_ratio: float
    peak_cache_gb: float
    cpu_series: List[Tuple[float, float]] = field(default_factory=list)
    gpu_series: List[Tuple[float, float]] = field(default_factory=list)
    cache_report: Dict[str, object] = field(default_factory=dict)
    all_succeeded: bool = True
    #: Effective utilization rates: useful compute over capacity x time.
    #: This is the quantity the paper's CUR/MUR track — caching shrinks
    #: the I/O stalls, so the same compute fits in less wall-clock.
    effective_cpu_util: float = 0.0
    effective_mem_util: float = 0.0


def _cluster_for(spec: ScenarioSpec) -> Cluster:
    """A cluster sized so the scenario contends for resources (the
    utilization curves are only interesting under contention)."""
    gpu_nodes = max(4, spec.num_models // 3)
    return Cluster.uniform(
        f"{spec.name}-cluster",
        num_nodes=gpu_nodes,
        cpu_per_node=24.0,
        memory_per_node=96 * GB,
        gpu_per_node=2,
    )


def run_scenario(
    scenario: str,
    policy: str,
    cache_gb: Optional[float] = 30.0,
    iterations: int = 2,
    seed: int = 0,
    weights: Optional[ScoreWeights] = None,
    sample_interval_s: float = 60.0,
    skip_cached_steps: bool = False,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    scorer: str = "incremental",
) -> ScenarioRunResult:
    """Run one configuration to completion and summarize it.

    ``cache_gb=None`` gives an unbounded store (the ALL baseline's
    honest configuration: it shows up in the scatter plot as fast but
    storage-hungry).  Pass a ``tracer`` / ``metrics`` registry to record
    spans and counters for the whole run (``repro trace`` does this);
    both engine and cache share the one registry.  ``scorer`` selects
    the importance-scoring implementation (``"incremental"`` or the
    from-scratch ``"naive"`` reference — equivalent by the ``scores``
    verify oracle, so experiment results never depend on the choice).
    """
    spec = SCENARIOS[scenario]
    clock = SimClock()
    cluster = _cluster_for(spec)
    capacity = None if cache_gb is None else int(cache_gb * GB)
    manager = CacheManager(
        policy=policy,
        capacity_bytes=capacity,
        weights=weights or ScoreWeights(alpha=1.5, beta=1.0),
        metrics=metrics,
        scorer=scorer,
    )
    operator = WorkflowOperator(
        clock,
        cluster,
        cache_manager=manager,
        seed=seed,
        skip_cached_steps=skip_cached_steps,
        tracer=tracer,
        metrics=manager.metrics,
    )
    recorder = UtilizationRecorder(clock, cluster, interval_s=sample_interval_s)

    records = []
    workflows = []

    def submit_iteration(index: int) -> None:
        workflow = spec.build(index).to_executable()
        workflows.append(workflow)

        def on_complete(record) -> None:
            records.append(record)
            if index + 1 < iterations:
                submit_iteration(index + 1)
            else:
                recorder.stop()

        operator.submit(workflow, on_complete=on_complete)

    recorder.start()
    submit_iteration(0)
    operator.run_to_completion()

    finish = max((r.finish_time or 0.0) for r in records) if records else 0.0
    report = manager.report()
    cpu_seconds = 0.0
    mem_byte_seconds = 0.0
    for workflow, record in zip(workflows, records):
        for step in workflow.steps.values():
            step_record = record.step(step.name)
            cpu_seconds += step_record.compute_seconds * step.requests.cpu
            mem_byte_seconds += step_record.compute_seconds * step.requests.memory
    capacity = cluster.capacity
    effective_cpu = cpu_seconds / (capacity.cpu * finish) if finish else 0.0
    effective_mem = (
        mem_byte_seconds / (capacity.memory * finish) if finish else 0.0
    )
    return ScenarioRunResult(
        scenario=scenario,
        policy=policy,
        cache_gb=cache_gb,
        iterations=iterations,
        total_time_s=finish,
        mean_cpu_util=recorder.mean_cpu(until=finish),
        mean_gpu_util=recorder.mean_gpu(until=finish),
        hit_ratio=manager.hit_ratio(),
        peak_cache_gb=report["peak_bytes"] / GB,
        cpu_series=recorder.series("cpu"),
        gpu_series=recorder.series("gpu"),
        cache_report=report,
        all_succeeded=all(r.phase == WorkflowPhase.SUCCEEDED for r in records),
        effective_cpu_util=effective_cpu,
        effective_mem_util=effective_mem,
    )
