"""Table III — cost analysis of workflow generation.

Average LLM tokens and dollar cost per workflow for the full
Algorithm 1 pipeline, under GPT-3.5-turbo and GPT-4 pricing.  The token
counts come from the real prompts/completions the pipeline exchanges
with the (simulated) model — only the quality sampling is synthetic.
"""

from __future__ import annotations

from typing import Dict

from ..llm.simulated import GPT35_PROFILE, GPT4_PROFILE, SimulatedLLM
from ..nl2wf.corpus import build_corpus
from ..nl2wf.pipeline import NLToWorkflow
from .reporting import format_table

PAPER_ROWS = {
    "gpt-3.5-turbo": {"tokens": 3212.1, "usd": 0.005},
    "gpt-4": {"tokens": 3813.7, "usd": 0.140},
}


def run(num_tasks: int = 26, seed: int = 100) -> Dict[str, Dict[str, float]]:
    tasks = build_corpus()[:num_tasks]
    results: Dict[str, Dict[str, float]] = {}
    for profile in (GPT35_PROFILE, GPT4_PROFILE):
        total_tokens = 0
        total_cost = 0.0
        for index, task in enumerate(tasks):
            llm = SimulatedLLM(profile, seed=seed + index)
            NLToWorkflow(llm).convert(task)
            total_tokens += llm.meter.total_tokens
            total_cost += llm.meter.cost_usd
        results[profile.name] = {
            "tokens": total_tokens / len(tasks),
            "usd": total_cost / len(tasks),
        }
    return results


def report(results: Dict[str, Dict[str, float]]) -> str:
    rows = [
        (
            model,
            f"{values['tokens']:.1f}",
            f"{values['usd']:.3f}",
            f"{PAPER_ROWS[model]['tokens']:.1f}",
            f"{PAPER_ROWS[model]['usd']:.3f}",
        )
        for model, values in results.items()
    ]
    return format_table(
        ["model", "tokens/workflow", "$/workflow", "paper tokens", "paper $"],
        rows,
        title="Table III: cost analysis of workflow generation",
    )


def main() -> None:
    print(report(run()))


if __name__ == "__main__":
    main()
