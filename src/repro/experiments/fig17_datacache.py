"""Fig. 17 (Appendix D.C) — data caching for table and file reads.

(a) Table reads: the two ads-recommendation tables read with and
    without the Dataset-CRD local cache; the paper observes the cache
    roughly doubling data-loading throughput.
(b) File reads: the small-files (>10k files, >10 GB) and big-files
    (~10 zips >1 GB) workloads read by 1..8 concurrent jobs; with the
    caching server the data syncs once and every job reads locally —
    >4x faster in the paper.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..caching.dataset_crd import CachingServer
from ..workloads.datagen import ads_tables, big_files_dataset, small_files_dataset
from .reporting import format_table

GB = 2**30


def run_table_reads() -> List[Dict[str, object]]:
    """Part (a): per-table read throughput, cache off vs on.

    Table loading is deserialization-bound once the network is out of
    the way, so the cached path uses an effective local bandwidth well
    below raw memory speed — that is why the paper sees ~2x, not the
    >4x of raw file reads.
    """
    from ..engine.cachehooks import BandwidthModel

    table_bandwidth = BandwidthModel(remote_bw=100e6, local_bw=220e6)
    rows = []
    for dataset in ads_tables():
        server = CachingServer(bandwidth=table_bandwidth)
        server.register(dataset)
        no_cache_bps = server.throughput_bps(dataset.name, use_cache=False)
        server.sync(dataset.name)
        cache_bps = server.throughput_bps(dataset.name, use_cache=True)
        rows.append(
            {
                "table": dataset.name,
                "no_cache_mbps": no_cache_bps / 1e6,
                "cache_mbps": cache_bps / 1e6,
                "speedup": cache_bps / no_cache_bps,
            }
        )
    return rows


def run_file_reads(job_counts: Sequence[int] = (1, 2, 4, 8)) -> List[Dict[str, object]]:
    """Part (b): total read time for N jobs reading the same files."""
    rows = []
    for dataset in (small_files_dataset(), big_files_dataset()):
        for jobs in job_counts:
            no_server = CachingServer()
            no_server.register(dataset)
            no_cache_s = sum(
                no_server.multi_job_read_seconds(dataset.name, jobs, use_cache=False)
            )
            cache_server = CachingServer()
            cache_server.register(dataset)
            cache_s = sum(
                cache_server.multi_job_read_seconds(dataset.name, jobs, use_cache=True)
            )
            rows.append(
                {
                    "workload": dataset.name,
                    "jobs": jobs,
                    "no_cache_s": no_cache_s,
                    "cache_s": cache_s,
                    "speedup": no_cache_s / cache_s if cache_s else float("inf"),
                }
            )
    return rows


def run() -> Dict[str, List[Dict[str, object]]]:
    return {"tables": run_table_reads(), "files": run_file_reads()}


def report(results: Dict[str, List[Dict[str, object]]]) -> str:
    table_rows = [
        (r["table"], f"{r['no_cache_mbps']:.0f}", f"{r['cache_mbps']:.0f}", f"{r['speedup']:.1f}x")
        for r in results["tables"]
    ]
    file_rows = [
        (r["workload"], r["jobs"], f"{r['no_cache_s']:.0f}", f"{r['cache_s']:.0f}", f"{r['speedup']:.1f}x")
        for r in results["files"]
    ]
    return "\n\n".join(
        [
            format_table(
                ["table", "no-cache MB/s", "cached MB/s", "speedup"],
                table_rows,
                title="Fig 17a: table read throughput (paper: ~2x)",
            ),
            format_table(
                ["workload", "jobs", "no-cache total (s)", "cached total (s)", "speedup"],
                file_rows,
                title="Fig 17b: file reads vs concurrent jobs (paper: >4x)",
            ),
        ]
    )


def main() -> None:
    print(report(run()))


if __name__ == "__main__":
    main()
