"""Table II — pass@k for NL -> unified programming code generation.

Evaluates GPT-3.5 and GPT-4 (simulated), each raw (single-shot whole-
workflow generation) and with "+Ours" (Algorithm 1: decomposition +
Code Lake retrieval + self-calibration).  Each model runs at
temperatures {0.2, 0.6, 0.8}; the best temperature per k is reported,
following the paper's (CodeGen-style) procedure.

Also includes the ablation study DESIGN.md calls for: retrieval-only
and calibration-only variants of the pipeline.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..nl2wf.corpus import build_corpus
from ..nl2wf.passk import (
    DEFAULT_KS,
    DEFAULT_TEMPERATURES,
    evaluate_sampler,
    make_ours_sampler,
    make_raw_sampler,
)
from .reporting import format_table

PAPER_ROWS = {
    "GPT-3.5": {1: 35.21, 3: 37.19, 5: 39.21},
    "GPT-4": {1: 45.81, 3: 48.11, 5: 50.23},
    "GPT-3.5 + Ours": {1: 61.25, 3: 62.97, 5: 65.03},
    "GPT-4 + Ours": {1: 73.12, 3: 75.61, 5: 77.38},
}


def run(
    num_samples: int = 5,
    temperatures: Sequence[float] = DEFAULT_TEMPERATURES,
    ks: Sequence[int] = DEFAULT_KS,
    num_tasks: int = 26,
    seed: int = 0,
    with_ablations: bool = False,
) -> Dict[str, Dict[int, float]]:
    """Best-per-k pass@k per configuration (percentages)."""
    tasks = build_corpus()[:num_tasks]
    configs = {
        "GPT-3.5": make_raw_sampler("gpt-3.5-turbo", seed=seed),
        "GPT-4": make_raw_sampler("gpt-4", seed=seed),
        "GPT-3.5 + Ours": make_ours_sampler("gpt-3.5-turbo", seed=seed),
        "GPT-4 + Ours": make_ours_sampler("gpt-4", seed=seed),
    }
    if with_ablations:
        configs["GPT-4 + Ours (no retrieval)"] = make_ours_sampler(
            "gpt-4", seed=seed, use_retrieval=False
        )
        configs["GPT-4 + Ours (no calibration)"] = make_ours_sampler(
            "gpt-4", seed=seed, use_calibration=False
        )
        configs["GPT-4 + Ours (+ user feedback)"] = make_ours_sampler(
            "gpt-4", seed=seed, user_feedback_rounds=2
        )
    results: Dict[str, Dict[int, float]] = {}
    for label, sampler in configs.items():
        per_temperature = evaluate_sampler(
            tasks, sampler, num_samples=num_samples, temperatures=temperatures, ks=ks
        )
        results[label] = {
            k: 100.0 * max(scores[k] for scores in per_temperature.values())
            for k in ks
        }
    return results


def report(results: Dict[str, Dict[int, float]]) -> str:
    rows = []
    for label, scores in results.items():
        paper = PAPER_ROWS.get(label, {})
        rows.append(
            (
                label,
                f"{scores[1]:.1f}",
                f"{scores[3]:.1f}",
                f"{scores[5]:.1f}",
                " / ".join(f"{paper.get(k, float('nan')):.1f}" for k in (1, 3, 5))
                if paper
                else "-",
            )
        )
    return format_table(
        ["model", "pass@1", "pass@3", "pass@5", "paper (1/3/5)"],
        rows,
        title="Table II: NL -> unified programming code generation (pass@k %)",
    )


def main() -> None:
    print(report(run()))


if __name__ == "__main__":
    main()
