"""Fig. 6 — fleet-wide effect of migrating workflows onto Couler.

The paper tracks twelve months during which ~90% of the cluster's
workflows moved to Couler, lifting CPU utilization (CUR) by ~18%,
memory utilization (MUR) by ~17% and the workflow completion rate (WCR)
for both 50− and 50+ core workflows.

The reproduction grounds each mode's efficiency in actual simulations:

- *utilization gain* comes from running the caching scenarios with and
  without Couler's optimizations (same compute, less wall-clock);
- *completion-rate gain* comes from failure-injected fleets executed
  with and without Couler's retry + restart-from-failure handling;
- *preemption migration* folds the checkpoint-evict/restore path in:
  batch workflows checkpoint-evicted by serving bursts must still reach
  completion after restore, and the admission cooldown keeps re-eviction
  churn below the uncooled baseline;

then composes a monthly adoption ramp over the measured endpoints.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from ..engine.admission import AdmissionPipeline
from ..engine.operator import WorkflowOperator
from ..engine.retry import RetryPolicy
from ..engine.simclock import SimClock
from ..engine.spec import ExecutableStep, ExecutableWorkflow, FailureProfile
from ..engine.status import WorkflowPhase
from ..k8s.cluster import Cluster
from ..k8s.resources import ResourceQuantity
from .caching_runner import run_scenario
from .reporting import format_table

GB = 2**30


def _random_workflow(
    name: str, steps: int, cores_per_step: float, failure_rate: float, rng: random.Random
) -> ExecutableWorkflow:
    """A layered random DAG with per-step failure injection."""
    workflow = ExecutableWorkflow(name=name)
    layer_size = max(2, steps // 5)
    previous_layer: List[str] = []
    index = 0
    while index < steps:
        layer = []
        for _ in range(min(layer_size, steps - index)):
            step_name = f"s{index}"
            deps = (
                rng.sample(previous_layer, min(2, len(previous_layer)))
                if previous_layer
                else []
            )
            workflow.add_step(
                ExecutableStep(
                    name=step_name,
                    duration_s=60 + rng.random() * 120,
                    requests=ResourceQuantity(cpu=cores_per_step, memory=2 * GB),
                    dependencies=deps,
                    failure=FailureProfile(rate=failure_rate),
                )
            )
            layer.append(step_name)
            index += 1
        previous_layer = layer
    return workflow


def completion_rate(
    with_couler: bool,
    num_workflows: int = 30,
    steps: int = 12,
    cores_per_step: float = 4.0,
    failure_rate: float = 0.02,
    seed: int = 0,
) -> float:
    """Fraction of failure-injected workflows that complete.

    ``with_couler=False`` models the legacy controller: no retries, a
    failed step fails the workflow.  ``with_couler=True`` enables the
    backoff-retry policy plus one restart-from-failure attempt, the two
    mechanisms Appendix B.B credits for the WCR gain.
    """
    rng = random.Random(seed)
    clock = SimClock()
    cluster = Cluster.uniform("wcr", 16, cpu_per_node=64, memory_per_node=256 * GB)
    retry = RetryPolicy(limit=3) if with_couler else RetryPolicy(limit=0)
    operator = WorkflowOperator(clock, cluster, retry_policy=retry, seed=seed)
    records = {}
    workflows = {}
    for index in range(num_workflows):
        workflow = _random_workflow(
            f"wf-{index}", steps, cores_per_step, failure_rate, rng
        )
        workflows[workflow.name] = workflow
        records[workflow.name] = operator.submit(workflow)
    operator.run_to_completion()

    if with_couler:
        # Manual restart-from-failure: completed steps are skipped.
        for name, record in list(records.items()):
            if record.phase == WorkflowPhase.FAILED:
                for step in record.steps.values():
                    if not step.status.counts_as_done():
                        step.status = step.status.PENDING
                records[name] = operator.submit(
                    workflows[name], record=record
                )
        operator.run_to_completion()

    completed = sum(
        1 for r in records.values() if r.phase == WorkflowPhase.SUCCEEDED
    )
    return completed / num_workflows


def preempted_completion(
    cooldown: float = 60.0,
    seed: int = 0,
) -> Dict[str, float]:
    """Checkpoint migration over the preemption path.

    A contended cluster runs a long batch workflow that serving bursts
    checkpoint-evict; the migration story only holds if the evicted
    workflow completes after restore.  Bursts land 20 virtual seconds
    after each restore, so ``cooldown=0`` reproduces the eviction-thrash
    churn the admission cooldown fixes — callers can compare eviction
    counts with and without the window.
    """
    cluster = Cluster.uniform(
        "fig6-preempt", 1, cpu_per_node=8.0, memory_per_node=32 * GB
    )
    pipeline = AdmissionPipeline(
        [cluster],
        seed=seed,
        fairness="drf",
        preemption=True,
        max_preemptions=4,
        preempt_cooldown=cooldown,
    )
    workflow = ExecutableWorkflow(name="batch-victim")
    previous = None
    for part in range(4):
        workflow.add_step(
            ExecutableStep(
                name=f"s{part}",
                duration_s=100.0,
                requests=ResourceQuantity(cpu=2.0, memory=2 * GB),
                dependencies=[previous] if previous else [],
            )
        )
        previous = f"s{part}"
    victim = pipeline.submit_at(0.0, workflow, user="batch", slo_class="batch")
    for at in (50.0, 90.0, 130.0):
        burst = ExecutableWorkflow(name=f"serve-{at:.0f}")
        burst.add_step(
            ExecutableStep(
                name="req",
                duration_s=20.0,
                requests=ResourceQuantity(cpu=8.0, memory=2 * GB),
            )
        )
        pipeline.submit_at(at, burst, user="frontend", slo_class="serving")
    pipeline.run()

    evicted = [victim] if victim.preemptions > 0 else []
    completed = sum(
        1
        for member in evicted
        if member.record is not None
        and member.record.phase == WorkflowPhase.SUCCEEDED
    )
    return {
        "evicted": float(len(evicted)),
        "evictions": float(victim.preemptions),
        "completion_rate": completed / len(evicted) if evicted else 1.0,
    }


@dataclass
class MigrationPoint:
    month: int
    adoption: float
    cur: float
    mur: float
    wcr_small: float
    wcr_big: float


def run(seed: int = 0, iterations: int = 2) -> Dict[str, object]:
    """Measure endpoints, then compose the 12-month adoption ramp."""
    legacy = run_scenario("multimodal", "no", cache_gb=0, iterations=iterations, seed=seed)
    couler = run_scenario(
        "multimodal", "couler", cache_gb=30.0, iterations=iterations, seed=seed
    )
    wcr_small_legacy = completion_rate(False, steps=10, cores_per_step=3.0, seed=seed)
    wcr_small_couler = completion_rate(True, steps=10, cores_per_step=3.0, seed=seed)
    wcr_big_legacy = completion_rate(
        False, steps=40, cores_per_step=8.0, failure_rate=0.025, seed=seed + 1
    )
    wcr_big_couler = completion_rate(
        True, steps=40, cores_per_step=8.0, failure_rate=0.025, seed=seed + 1
    )

    points: List[MigrationPoint] = []
    for month in range(13):
        adoption = min(0.9, 0.09 * month)
        blend = lambda a, b: a * (1 - adoption) + b * adoption  # noqa: E731
        points.append(
            MigrationPoint(
                month=month,
                adoption=adoption,
                cur=blend(legacy.effective_cpu_util, couler.effective_cpu_util),
                mur=blend(legacy.effective_mem_util, couler.effective_mem_util),
                wcr_small=blend(wcr_small_legacy, wcr_small_couler),
                wcr_big=blend(wcr_big_legacy, wcr_big_couler),
            )
        )

    preempt = preempted_completion(seed=seed)
    thrash = preempted_completion(cooldown=0.0, seed=seed)

    first, last = points[0], points[-1]
    return {
        "points": points,
        "cur_improvement_pct": 100.0 * (last.cur - first.cur) / first.cur,
        "mur_improvement_pct": 100.0 * (last.mur - first.mur) / first.mur,
        "wcr_small_improvement_pct": 100.0 * (last.wcr_small - first.wcr_small),
        "wcr_big_improvement_pct": 100.0 * (last.wcr_big - first.wcr_big),
        "preempted_wcr": preempt["completion_rate"],
        "preempted_workflows": preempt["evicted"],
        "preemption_evictions": preempt["evictions"],
        "preemption_evictions_no_cooldown": thrash["evictions"],
    }


def report(results: Dict[str, object]) -> str:
    rows = [
        (p.month, f"{p.adoption:.0%}", p.cur, p.mur, p.wcr_small, p.wcr_big)
        for p in results["points"]
    ]
    table = format_table(
        ["month", "on Couler", "CUR", "MUR", "WCR (50- cores)", "WCR (50+ cores)"],
        rows,
        title="Fig 6: migration to Couler over 12 months",
    )
    summary = (
        f"CUR improvement: {results['cur_improvement_pct']:.1f}% (paper ~18%)\n"
        f"MUR improvement: {results['mur_improvement_pct']:.1f}% (paper ~17%)\n"
        f"WCR gain 50-: {results['wcr_small_improvement_pct']:.1f} pts; "
        f"WCR gain 50+: {results['wcr_big_improvement_pct']:.1f} pts\n"
        f"Preempted WCR: {results['preempted_wcr']:.0%} over "
        f"{results['preempted_workflows']:.0f} evicted workflows "
        f"({results['preemption_evictions']:.0f} evictions with cooldown, "
        f"{results['preemption_evictions_no_cooldown']:.0f} without)"
    )
    return table + "\n\n" + summary


def main() -> None:
    print(report(run()))


if __name__ == "__main__":
    main()
