"""SQL + NL scenario corpus, end to end through the unified stack.

The paper's pitch is one layer serving every frontend: SQLFlow scripts
and NL-planned workflows compile to the same IR, flow through the same
optimizers (automatic caching, big-workflow splitting) and land in the
same ``EngineConfig``-driven admission pipeline.  This driver runs the
seeded scenario corpus (:mod:`repro.workloads.corpus`) through exactly
that path and reports, per persona, what the unified layer bought:
cache hit rates (rerun redundancy actually reused), queue latency
p50/p99 per SLO lane, and makespan.

Splitting is real, not cosmetic: any compiled workflow above the step
budget is split by Algorithm 3 and its parts are chained through
admission completion callbacks, like statements of one script.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..caching.manager import CacheManager
from ..control.policy import PolicyConfig
from ..engine.config import EngineConfig
from ..obs.metrics import MetricsRegistry
from ..parallelism.budget import BudgetModel
from ..parallelism.splitter import WorkflowSplitter
from ..workloads.corpus import (
    CorpusSpec,
    ScenarioCorpus,
    build_corpus,
    submit_chain,
)
from ..workloads.fleetgen import build_pipeline
from .reporting import format_table

GB = 2**30


def _quantile(values: List[float], q: float) -> float:
    """Nearest-rank quantile; 0.0 for an empty sample."""
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[index]


@dataclass
class PersonaStats:
    """Per-persona outcome of one corpus run."""

    persona: str
    entries: int
    workflows: int
    reruns: int
    cache_hits: int
    cache_misses: int
    queue_p50_s: float
    queue_p99_s: float
    makespan_s: float

    @property
    def hit_ratio(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


@dataclass
class CorpusRunResult:
    """One engine configuration's run over the corpus."""

    engine: str
    corpus_digest: str
    entries: int
    workflows_submitted: int
    split_parts: int
    makespan_s: float
    personas: List[PersonaStats] = field(default_factory=list)
    #: (workflow, user, arrival, admitted, cluster, finish) tuples —
    #: the determinism fingerprint the integration test diffs across
    #: engine modes.
    fingerprint: List[tuple] = field(default_factory=list)
    #: Worst arrival-to-placement wait across the run (pending-inclusive).
    starvation_gap_s: float = 0.0


def run(
    seed: int = 0,
    size: int = 24,
    engine: str = "fast",
    cache_gb: Optional[float] = 2.0,
    split_max_steps: int = 6,
    corpus: Optional[ScenarioCorpus] = None,
    clusters: Optional[list] = None,
    policy: Optional[PolicyConfig] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> CorpusRunResult:
    """Corpus -> caching + splitting -> admission; one engine mode.

    ``clusters`` overrides the default (comfortable) corpus fleet —
    benchmarks pass a constrained one so queue latency is non-trivial.
    ``policy`` threads one :class:`PolicyConfig` through every knobbed
    subsystem (score weights, split budget, aging, retries);
    ``policy=PolicyConfig()`` is bit-identical to ``policy=None`` (the
    ``adaptive`` verify oracle pins this).  ``metrics`` shares a
    registry across cache and admission so the controller reads the
    whole run in one place.
    """
    corpus = corpus if corpus is not None else build_corpus(
        CorpusSpec(seed=seed, size=size)
    )
    spec = corpus.to_fleet_spec(clusters=clusters)
    manager = CacheManager(
        policy="couler",
        capacity_bytes=None if cache_gb is None else int(cache_gb * GB),
        policy_config=policy,
        metrics=metrics,
    )
    pipeline = build_pipeline(
        spec,
        EngineConfig(engine=engine, policy=policy),
        cache_manager=manager,
        skip_cached_steps=True,
        metrics=metrics,
    )

    budget_steps = (
        policy.split_budget(split_max_steps) if policy else split_max_steps
    )
    splitter = WorkflowSplitter(BudgetModel(max_steps=budget_steps))
    split_parts = 0
    records = []
    owners: Dict[str, str] = {}
    for entry in corpus.entries:
        executables = []
        for ir in entry.irs:
            if len(ir) > budget_steps:
                plan = splitter.split(ir)
                split_parts += plan.num_parts
                # Sequential chaining in topological part order is a
                # valid linearization of the cross-part dependencies.
                for index in plan.topological_part_order():
                    executables.append(plan.parts[index].to_executable())
            else:
                executables.append(ir.to_executable())
        for executable in executables:
            owners[executable.name] = entry.persona
        submit_chain(pipeline, entry, executables, records, chain=True)
    pipeline.run()

    personas: List[PersonaStats] = []
    for persona in corpus.spec.personas:
        entries = [e for e in corpus.entries if e.persona == persona]
        mine = [r for r in records if owners.get(r.workflow_name) == persona]
        done = [r for r in mine if r.finish_time is not None]
        latencies = [r.queue_latency for r in done if r.queue_latency is not None]
        start = min((e.arrival for e in entries), default=0.0)
        finish = max((r.finish_time for r in done), default=start)
        personas.append(
            PersonaStats(
                persona=persona,
                entries=len(entries),
                workflows=len(mine),
                reruns=sum(1 for e in entries if e.rerun_of),
                cache_hits=sum(
                    r.record.total_cache_hits() for r in done if r.record
                ),
                cache_misses=sum(
                    r.record.total_cache_misses() for r in done if r.record
                ),
                queue_p50_s=_quantile(latencies, 0.50),
                queue_p99_s=_quantile(latencies, 0.99),
                makespan_s=finish - start,
            )
        )

    finished = [r for r in records if r.finish_time is not None]
    fingerprint = sorted(
        (
            r.workflow_name,
            r.user,
            round(r.arrival_time, 6),
            r.admitted,
            r.cluster_name,
            None if r.finish_time is None else round(r.finish_time, 6),
        )
        for r in records
    )
    return CorpusRunResult(
        engine=engine,
        corpus_digest=corpus.digest(),
        entries=len(corpus.entries),
        workflows_submitted=len(records),
        split_parts=split_parts,
        makespan_s=max((r.finish_time for r in finished), default=0.0),
        personas=personas,
        fingerprint=fingerprint,
        starvation_gap_s=pipeline.starvation_gap(),
    )


def report(result: CorpusRunResult) -> str:
    rows = [
        (
            p.persona,
            str(p.entries),
            str(p.workflows),
            str(p.reruns),
            f"{p.hit_ratio:.2%}",
            f"{p.queue_p50_s:.1f}",
            f"{p.queue_p99_s:.1f}",
            f"{p.makespan_s:.0f}",
        )
        for p in result.personas
    ]
    table = format_table(
        [
            "persona",
            "entries",
            "workflows",
            "reruns",
            "hit ratio",
            "queue p50 (s)",
            "queue p99 (s)",
            "makespan (s)",
        ],
        rows,
        title=(
            f"SQL+NL corpus e2e [engine={result.engine}]: "
            f"{result.entries} entries -> {result.workflows_submitted} "
            f"workflows ({result.split_parts} split parts), "
            f"makespan {result.makespan_s:.0f}s "
            "(expected: rerun-heavy personas reuse, serving lane waits least)"
        ),
    )
    return table + f"\ncorpus digest: {result.corpus_digest}"


def main() -> None:
    print(report(run()))


if __name__ == "__main__":
    main()
