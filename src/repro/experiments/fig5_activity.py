"""Fig. 5 — workflow activity analysis (daily count, lifespan, CPU cores).

Regenerates the three distributions the paper plots for July 2022 –
July 2023: average daily workflow count (mean ~22k), workflow lifespan
(mean ~1 h) and CPU cores per workflow (mean ~36).
"""

from __future__ import annotations

from typing import Dict

from ..workloads.traces import TraceGenerator, histogram, mean
from .reporting import format_table


def run(seed: int = 0, sample_size: int = 20_000) -> Dict[str, object]:
    """Produce the three Fig. 5 distributions plus their means."""
    generator = TraceGenerator(seed=seed)
    daily = generator.daily_counts()
    workflows = generator.sample_workflows(sample_size)

    counts = [d.workflow_count for d in daily]
    lifespans = [w.lifespan_hours for w in workflows]
    cores = [w.cpu_cores for w in workflows]

    return {
        "daily_mean": mean(counts),
        "daily_histogram": histogram(
            counts, [16000, 18000, 20000, 22000, 24000, 26000]
        ),
        "lifespan_mean_hours": mean(lifespans),
        "lifespan_histogram": histogram(
            lifespans, [0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0]
        ),
        "cores_mean": mean(cores),
        "cores_histogram": histogram(cores, [0, 8, 16, 32, 64, 128]),
    }


def report(results: Dict[str, object]) -> str:
    sections = [
        format_table(
            ["daily workflow count bin", "days"],
            results["daily_histogram"],
            title=f"Fig 5a: daily workflows (mean {results['daily_mean']:.0f}, "
            "paper ~22000)",
        ),
        format_table(
            ["lifespan bin (hours)", "workflows"],
            results["lifespan_histogram"],
            title=f"Fig 5b: lifespan (mean {results['lifespan_mean_hours']:.2f} h, "
            "paper ~1 h)",
        ),
        format_table(
            ["CPU cores bin", "workflows"],
            results["cores_histogram"],
            title=f"Fig 5c: CPU cores (mean {results['cores_mean']:.1f}, paper ~36)",
        ),
    ]
    return "\n\n".join(sections)


def main() -> None:
    print(report(run()))


if __name__ == "__main__":
    main()
