"""Shared plain-text reporting helpers for the experiment drivers.

Every experiment prints the same rows/series the paper's table or
figure shows; these helpers keep that output aligned and diff-friendly
(EXPERIMENTS.md embeds them verbatim).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width text table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def format_series(name: str, points: Sequence[tuple], max_points: int = 12) -> str:
    """Render a (time, value) series, downsampled for readability."""
    if len(points) > max_points:
        step = max(1, len(points) // max_points)
        points = list(points)[::step]
    body = ", ".join(f"({t:.0f}s, {v:.2f})" for t, v in points)
    return f"{name}: {body}"
