"""Figs. 14–16 (Appendix D.B) — Couler's caching at 10G / 20G / 30G.

The paper's observation: under tighter caches some artifacts no longer
qualify for caching and effectiveness drops, but Couler still improves
workflow execution; effectiveness grows with cache size.  The driver
also keeps a no-cache reference row so the improvement at each size is
visible.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .caching_runner import ScenarioRunResult, run_scenario
from .fig7_caching import SCENARIO_NAMES
from .reporting import format_table

CACHE_SIZES_GB = (10.0, 20.0, 30.0)


def run(
    scenarios: Sequence[str] = SCENARIO_NAMES,
    cache_sizes_gb: Sequence[float] = CACHE_SIZES_GB,
    iterations: int = 3,
    seed: int = 0,
) -> Dict[str, List[ScenarioRunResult]]:
    grid: Dict[str, List[ScenarioRunResult]] = {}
    for scenario in scenarios:
        runs = [
            run_scenario(scenario, "no", cache_gb=0, iterations=iterations, seed=seed)
        ]
        for size in cache_sizes_gb:
            runs.append(
                run_scenario(
                    scenario, "couler", cache_gb=size, iterations=iterations, seed=seed
                )
            )
        grid[scenario] = runs
    return grid


def report(grid: Dict[str, List[ScenarioRunResult]]) -> str:
    sections = []
    for scenario, results in grid.items():
        rows = []
        for r in results:
            label = "no cache" if r.policy == "no" else f"couler {r.cache_gb:.0f}G"
            rows.append(
                (
                    label,
                    f"{r.total_time_s:.0f}",
                    f"{r.effective_cpu_util:.3f}",
                    f"{r.hit_ratio:.2%}",
                    f"{r.peak_cache_gb:.1f}",
                )
            )
        sections.append(
            format_table(
                ["config", "exec time (s)", "CPU util", "hit ratio", "peak cache (GB)"],
                rows,
                title=f"Figs 14-16 [{scenario}]: effectiveness grows with cache size",
            )
        )
    return "\n\n".join(sections)


def main() -> None:
    print(report(run()))


if __name__ == "__main__":
    main()
