"""Fig. 7 — automatic caching vs. No / ALL across the three scenarios.

For each scenario (Multimodal 37 pods/19 models, Image Segmentation
15/8, LM Fine-tuning 21/11) and each strategy, the driver reports
workflow execution time, CPU/GPU utilization over time, peak caching
storage (the scatter plot's resource axis) and the cache hit ratio.
Paper parameters: alpha=1.5, beta=1 (Eq. 6), 30G cache for bounded
strategies; ALL runs unbounded, which is its point — fast but
storage-hungry.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..caching.score import ScoreWeights
from .caching_runner import ScenarioRunResult, run_scenario
from .reporting import format_series, format_table

SCENARIO_NAMES = ("multimodal", "image-segmentation", "lm-finetune")
HEADLINE_POLICIES = ("no", "all", "couler")


def run(
    scenarios: Sequence[str] = SCENARIO_NAMES,
    policies: Sequence[str] = HEADLINE_POLICIES,
    cache_gb: float = 30.0,
    iterations: int = 3,
    seed: int = 0,
) -> Dict[str, List[ScenarioRunResult]]:
    """Run the full grid; results keyed by scenario."""
    weights = ScoreWeights(alpha=1.5, beta=1.0)
    grid: Dict[str, List[ScenarioRunResult]] = {}
    for scenario in scenarios:
        grid[scenario] = [
            run_scenario(
                scenario,
                policy,
                cache_gb=None if policy == "all" else cache_gb,
                iterations=iterations,
                seed=seed,
                weights=weights,
            )
            for policy in policies
        ]
    return grid


def report(grid: Dict[str, List[ScenarioRunResult]]) -> str:
    sections = []
    for scenario, results in grid.items():
        rows = [
            (
                r.policy,
                f"{r.total_time_s:.0f}",
                f"{r.effective_cpu_util:.3f}",
                f"{r.mean_gpu_util:.3f}",
                f"{r.hit_ratio:.2%}",
                f"{r.peak_cache_gb:.1f}",
            )
            for r in results
        ]
        sections.append(
            format_table(
                ["policy", "exec time (s)", "CPU util", "GPU util", "hit ratio", "peak cache (GB)"],
                rows,
                title=f"Fig 7 [{scenario}]: caching strategies "
                "(expected: couler ~= all on time at a fraction of the storage; no slowest)",
            )
        )
        couler = next(r for r in results if r.policy == "couler")
        sections.append(format_series("  couler CPU util over time", couler.cpu_series))
        sections.append(format_series("  couler GPU util over time", couler.gpu_series))
    return "\n\n".join(sections)


def main() -> None:
    print(report(run()))


if __name__ == "__main__":
    main()
