"""Experiment drivers: one module per paper table/figure + ablations.

Each module exposes ``run(...) -> results`` and ``report(results) ->
str`` (the rows/series the paper shows); ``main()`` prints the report.
The benchmark suite under ``benchmarks/`` wraps these drivers.
"""

from . import (
    ablation_cache_score,
    ablation_reuse,
    ablation_split_budget,
    fig5_activity,
    fig6_migration,
    fig7_caching,
    fig8_autotune,
    fig11_13_policies,
    fig14_16_cache_sizes,
    fig17_datacache,
    sql_nl_pipeline,
    table2_passk,
    table3_cost,
    table4_learning,
)
from .caching_runner import ScenarioRunResult, run_scenario

__all__ = [
    "ScenarioRunResult",
    "ablation_cache_score",
    "ablation_reuse",
    "ablation_split_budget",
    "fig5_activity",
    "fig6_migration",
    "fig7_caching",
    "fig8_autotune",
    "fig11_13_policies",
    "fig14_16_cache_sizes",
    "fig17_datacache",
    "run_scenario",
    "sql_nl_pipeline",
    "table2_passk",
    "table3_cost",
    "table4_learning",
]
