"""Adaptive vs static policy ablation (``repro run adaptive-ablation``).

The question this experiment answers: do the paper's fixed policy
constants leave performance on the table that the metrics-driven
controller (:mod:`repro.control`) can recover?  Protocol:

1. **Tune** — the controller runs successive halving over the seeded
   scenario corpus, reading the obs metrics registry per candidate, and
   emits one winning :class:`~repro.control.policy.PolicyConfig` plus a
   replayable AdaptationLog.
2. **Cache sweep** (the fig14–16 shape) — the tuning corpus runs under
   static defaults and under the tuned policy at several cache sizes;
   per-point hit ratio, batch-lane queue p99 and starvation gap are
   compared.
3. **Held-out robustness** — a corpus drawn from a *different* seed and
   size repeats the comparison, showing which wins transfer beyond the
   tuning distribution (reported, not gated: cache-knob wins are
   workload-shaped, the latency wins transfer).

Headline metrics (committed to ``BENCH_adaptive.json`` and ratcheted in
CI): sweep-mean cache hit ratio, batch-persona queue p99 and
pending-inclusive starvation gap at the reference cache size.  The
adaptive policy must beat static defaults on at least two; everything
is same-seed deterministic.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..control.controller import Controller, evaluate_policy
from ..control.policy import PolicyConfig
from ..workloads.corpus import CorpusSpec, build_corpus
from .reporting import format_table

#: Cache sizes (GB) for the sweep — bracketing the corpus working set
#: the way fig14–16 brackets the scenario working sets.
CACHE_SWEEP_GB: Tuple[float, ...] = (0.5, 1.0, 2.0)
#: The sweep point whose latency numbers are the committed headline.
REFERENCE_CACHE_GB = 1.0


@dataclass
class AblationResult:
    """Everything one adaptive-vs-static comparison produced."""

    seed: int
    tuned_policy: Dict[str, object]
    adaptation_digest: str
    tune_rounds: int
    tune_evaluations: int
    #: cache_gb -> {"static": metrics, "adaptive": metrics}
    sweep: List[dict] = field(default_factory=list)
    held_out: List[dict] = field(default_factory=list)
    #: metric -> {"static": x, "adaptive": y, "improved": bool}
    headline: Dict[str, dict] = field(default_factory=dict)
    wins: int = 0

    def digest(self) -> str:
        """Stable digest over every number the run produced."""
        payload = {
            "seed": self.seed,
            "tuned_policy": self.tuned_policy,
            "adaptation_digest": self.adaptation_digest,
            "sweep": self.sweep,
            "held_out": self.held_out,
            "headline": self.headline,
            "wins": self.wins,
        }
        text = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(text.encode("utf-8")).hexdigest()


#: Headline metric -> (source, direction).  ``sweep_mean_hit_ratio``
#: aggregates the sweep; the latency metrics read the reference point.
HEADLINE_METRICS = {
    "sweep_mean_hit_ratio": "higher",
    "batch_queue_p99_s": "lower",
    "starvation_gap_s": "lower",
}


def run(
    seed: int = 7,
    tune_size: int = 24,
    population: int = 8,
    rounds: int = 3,
    cache_sweep_gb: Tuple[float, ...] = CACHE_SWEEP_GB,
    held_out_seed: Optional[int] = None,
    held_out_size: int = 32,
) -> AblationResult:
    """Tune, then compare adaptive vs static across the sweep."""
    corpus = build_corpus(CorpusSpec(seed=seed, size=tune_size))
    controller = Controller(
        corpus, seed=seed, population=population, rounds=rounds,
        cache_gb=REFERENCE_CACHE_GB,
    )
    adaptation = controller.tune()
    tuned = adaptation.policy

    sweep: List[dict] = []
    static_hits: List[float] = []
    adaptive_hits: List[float] = []
    reference: Dict[str, Dict[str, float]] = {}
    for cache_gb in cache_sweep_gb:
        static = evaluate_policy(None, corpus, cache_gb=cache_gb)
        adaptive = evaluate_policy(tuned, corpus, cache_gb=cache_gb)
        sweep.append(
            {"cache_gb": cache_gb, "static": static, "adaptive": adaptive}
        )
        static_hits.append(static["hit_ratio"])
        adaptive_hits.append(adaptive["hit_ratio"])
        if cache_gb == REFERENCE_CACHE_GB:
            reference = {"static": static, "adaptive": adaptive}
    if not reference:
        reference = {"static": sweep[0]["static"], "adaptive": sweep[0]["adaptive"]}

    held_out: List[dict] = []
    ho_seed = held_out_seed if held_out_seed is not None else seed + 1
    ho_corpus = build_corpus(CorpusSpec(seed=ho_seed, size=held_out_size))
    ho_static = evaluate_policy(None, ho_corpus, cache_gb=REFERENCE_CACHE_GB)
    ho_adaptive = evaluate_policy(tuned, ho_corpus, cache_gb=REFERENCE_CACHE_GB)
    held_out.append(
        {
            "seed": ho_seed,
            "size": held_out_size,
            "cache_gb": REFERENCE_CACHE_GB,
            "static": ho_static,
            "adaptive": ho_adaptive,
        }
    )

    headline = {
        "sweep_mean_hit_ratio": {
            "static": round(sum(static_hits) / len(static_hits), 6),
            "adaptive": round(sum(adaptive_hits) / len(adaptive_hits), 6),
        },
        "batch_queue_p99_s": {
            "static": reference["static"]["batch_queue_p99_s"],
            "adaptive": reference["adaptive"]["batch_queue_p99_s"],
        },
        "starvation_gap_s": {
            "static": reference["static"]["starvation_gap_s"],
            "adaptive": reference["adaptive"]["starvation_gap_s"],
        },
    }
    wins = 0
    for metric, direction in HEADLINE_METRICS.items():
        entry = headline[metric]
        if direction == "higher":
            entry["improved"] = entry["adaptive"] > entry["static"]
        else:
            entry["improved"] = entry["adaptive"] < entry["static"]
        wins += int(entry["improved"])

    evaluations = sum(
        len(record["candidates"]) for record in adaptation.log.rounds
    )
    return AblationResult(
        seed=seed,
        tuned_policy=tuned.to_dict(),
        adaptation_digest=adaptation.log.digest(),
        tune_rounds=rounds,
        tune_evaluations=evaluations,
        sweep=sweep,
        held_out=held_out,
        headline=headline,
        wins=wins,
    )


def report(result: AblationResult) -> str:
    rows = []
    for point in result.sweep:
        static, adaptive = point["static"], point["adaptive"]
        rows.append(
            (
                f"{point['cache_gb']:.2g}G",
                f"{static['hit_ratio']:.3f}",
                f"{adaptive['hit_ratio']:.3f}",
                f"{static['batch_queue_p99_s']:.0f}",
                f"{adaptive['batch_queue_p99_s']:.0f}",
                f"{static['starvation_gap_s']:.0f}",
                f"{adaptive['starvation_gap_s']:.0f}",
            )
        )
    for point in result.held_out:
        static, adaptive = point["static"], point["adaptive"]
        rows.append(
            (
                f"held-out s{point['seed']}",
                f"{static['hit_ratio']:.3f}",
                f"{adaptive['hit_ratio']:.3f}",
                f"{static['batch_queue_p99_s']:.0f}",
                f"{adaptive['batch_queue_p99_s']:.0f}",
                f"{static['starvation_gap_s']:.0f}",
                f"{adaptive['starvation_gap_s']:.0f}",
            )
        )
    policy = PolicyConfig.from_dict(dict(result.tuned_policy))
    table = format_table(
        [
            "cache",
            "hit(stat)",
            "hit(adpt)",
            "p99 b(stat)",
            "p99 b(adpt)",
            "starve(stat)",
            "starve(adpt)",
        ],
        rows,
        title=(
            f"adaptive vs static policies [seed={result.seed}]: "
            f"{policy.describe()} after {result.tune_evaluations} "
            f"evaluations in {result.tune_rounds} halving rounds "
            "(expected: adaptive beats static on >=2 headline metrics)"
        ),
    )
    lines = [table, ""]
    for metric, entry in result.headline.items():
        marker = "improved" if entry["improved"] else "not improved"
        lines.append(
            f"  {metric}: static {entry['static']:.4g} -> adaptive "
            f"{entry['adaptive']:.4g}  [{marker}]"
        )
    lines.append(
        f"  wins: {result.wins}/{len(result.headline)} headline metrics; "
        f"adaptation log digest {result.adaptation_digest[:16]}…"
    )
    return "\n".join(lines)


def main() -> None:
    print(report(run()))


if __name__ == "__main__":
    main()
