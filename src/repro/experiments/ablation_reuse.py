"""Ablation — reuse of intermediate results (cached-step skipping).

The third optimization named in Sec. II.D: when every output of a step
is already resident in the cache, the engine marks the step ``Cached``
and never schedules it (the ``Dataset`` CRD lets the engine "skip steps
to read cached data", Appendix B.C).  This ablation measures the extra
gain on top of read-time caching across the three scenarios: the first
iteration builds the data artifacts; later iterations re-run them only
when skipping is off.

Note the scenarios' rerun graphs already *reuse* data artifacts rather
than re-produce them, so step-skip applies to iteration 0 resubmissions:
this driver therefore resubmits iteration 0 twice, the development
pattern ("rerun everything after a config tweak") where skipping pays.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..caching.manager import CacheManager
from ..engine.operator import WorkflowOperator
from ..engine.simclock import SimClock
from ..engine.status import StepStatus, WorkflowPhase
from ..k8s.cluster import Cluster
from ..workloads.scenarios import SCENARIOS
from .reporting import format_table

GB = 2**30


def _run(scenario: str, skip: bool, seed: int = 0) -> Dict[str, object]:
    spec = SCENARIOS[scenario]
    clock = SimClock()
    cluster = Cluster.uniform(
        f"{scenario}-reuse", max(4, spec.num_models // 3),
        cpu_per_node=24.0, memory_per_node=96 * GB, gpu_per_node=2,
    )
    manager = CacheManager(policy="all", capacity_bytes=None)
    operator = WorkflowOperator(
        clock, cluster, cache_manager=manager, seed=seed, skip_cached_steps=skip
    )
    records = []

    def submit(round_index: int) -> None:
        workflow = spec.build(0).to_executable()
        workflow.name = f"{workflow.name}-round{round_index}"

        def on_complete(record) -> None:
            records.append(record)
            if round_index == 0:
                submit(1)

        operator.submit(workflow, on_complete=on_complete)

    submit(0)
    operator.run_to_completion()
    second = records[1]
    skipped = sum(
        1 for s in second.steps.values() if s.status == StepStatus.CACHED
    )
    return {
        "scenario": scenario,
        "skip": skip,
        "total_time_s": max(r.finish_time for r in records),
        "second_round_s": second.makespan,
        "steps_skipped": skipped,
        "ok": all(r.phase == WorkflowPhase.SUCCEEDED for r in records),
    }


def run(scenarios: Optional[List[str]] = None, seed: int = 0) -> List[Dict[str, object]]:
    rows = []
    for scenario in scenarios or sorted(SCENARIOS):
        rows.append(_run(scenario, skip=False, seed=seed))
        rows.append(_run(scenario, skip=True, seed=seed))
    return rows


def report(rows: List[Dict[str, object]]) -> str:
    table_rows = [
        (
            r["scenario"],
            "on" if r["skip"] else "off",
            f"{r['second_round_s']:.0f}",
            r["steps_skipped"],
            r["ok"],
        )
        for r in rows
    ]
    return format_table(
        ["scenario", "step-skip", "2nd-round time (s)", "steps skipped", "ok"],
        table_rows,
        title="Ablation: reuse of intermediate results (cached-step skipping)",
    )


def main() -> None:
    print(report(run()))


if __name__ == "__main__":
    main()
