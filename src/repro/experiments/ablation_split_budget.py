"""Ablation — split budget sweep for big-workflow auto-parallelism.

Sweeps Algorithm 3's step budget over a large workflow and measures:
the number of sub-workflows produced, the largest part's YAML size
(all must clear the CRD limit), and the staged end-to-end makespan.
Also demonstrates the motivating failure: submitting the unsplit
workflow is rejected by the API server's CRD size limit.

Expected shape: smaller budgets yield more parts and longer makespans
(lost cross-part parallelism); the makespan approaches the monolithic
lower bound as the budget grows.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

from ..engine.operator import WorkflowOperator
from ..engine.simclock import SimClock
from ..ir.graph import WorkflowIR
from ..ir.nodes import IRNode, OpKind, SimHint
from ..k8s.apiserver import APIServer, CRDTooLargeError
from ..k8s.cluster import Cluster
from ..k8s.resources import ResourceQuantity
from ..backends.argo import ArgoBackend
from ..parallelism.budget import BudgetModel
from ..parallelism.splitter import WorkflowSplitter
from ..parallelism.stitch import StagedSubmitter
from .reporting import format_table

GB = 2**30


def build_big_workflow(
    num_layers: int = 12, width: int = 35, seed: int = 7
) -> WorkflowIR:
    """A ~400-node layered DAG like the production case the paper hit."""
    rng = random.Random(seed)
    ir = WorkflowIR(name="big-production-wf")
    previous: List[str] = []
    for layer in range(num_layers):
        current = []
        for index in range(width):
            name = f"l{layer}-n{index}"
            ir.add_node(
                IRNode(
                    name=name,
                    op=OpKind.CONTAINER,
                    image="etl-worker:v3",
                    resources=ResourceQuantity(cpu=2.0, memory=4 * GB),
                    sim=SimHint(duration_s=45 + rng.random() * 30),
                )
            )
            for parent in rng.sample(previous, min(2, len(previous))):
                ir.add_edge(parent, name)
            current.append(name)
        previous = current
    return ir


def run(
    step_budgets: Sequence[int] = (50, 100, 200, 400),
    crd_limit: int = 120_000,
    seed: int = 7,
) -> Dict[str, object]:
    ir = build_big_workflow(seed=seed)
    manifest = ArgoBackend().compile(ir)

    # The motivating failure: the unsplit CRD is rejected.
    api = APIServer(crd_size_limit=crd_limit)
    unsplit_rejected = False
    try:
        from ..k8s.objects import APIObject

        api.create(APIObject.from_dict(manifest))
    except CRDTooLargeError:
        unsplit_rejected = True

    rows = []
    for steps in step_budgets:
        budget = BudgetModel(max_yaml_bytes=crd_limit, max_steps=steps)
        plan = WorkflowSplitter(budget).split(ir)
        clock = SimClock()
        cluster = Cluster.uniform("split", 24, cpu_per_node=32, memory_per_node=128 * GB)
        operator = WorkflowOperator(
            clock, cluster, api_server=APIServer(crd_size_limit=crd_limit)
        )
        result = StagedSubmitter(operator).execute(plan)
        rows.append(
            {
                "step_budget": steps,
                "parts": plan.num_parts,
                "max_part_yaml": max(c.yaml_bytes for c in plan.costs),
                "makespan_s": result.makespan,
                "succeeded": result.succeeded,
            }
        )
    return {"unsplit_rejected": unsplit_rejected, "rows": rows, "nodes": len(ir.nodes)}


def report(results: Dict[str, object]) -> str:
    rows = [
        (
            r["step_budget"],
            r["parts"],
            r["max_part_yaml"],
            f"{r['makespan_s']:.0f}",
            r["succeeded"],
        )
        for r in results["rows"]
    ]
    header = (
        f"Ablation: split budget sweep over a {results['nodes']}-node workflow "
        f"(unsplit CRD rejected by the API server: {results['unsplit_rejected']})"
    )
    return format_table(
        ["step budget", "parts", "max part YAML (B)", "staged makespan (s)", "ok"],
        rows,
        title=header,
    )


def main() -> None:
    print(report(run()))


if __name__ == "__main__":
    main()
