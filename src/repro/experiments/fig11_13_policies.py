"""Figs. 11–13 (Appendix D.A) — Couler vs FIFO vs LRU per scenario.

Same setup as Fig. 7 but comparing the three bounded eviction policies.
The paper's finding: Couler's importance-factor policy adapts better to
the production workload than pure recency policies, because it weighs
reconstruction cost and *future* reuse rather than access order.  The
gap widens as the cache shrinks (see Figs. 14–16).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .caching_runner import ScenarioRunResult, run_scenario
from .fig7_caching import SCENARIO_NAMES
from .reporting import format_table

POLICY_SET = ("couler", "fifo", "lru")


def run(
    scenarios: Sequence[str] = SCENARIO_NAMES,
    cache_gb: float = 15.0,
    iterations: int = 3,
    seed: int = 0,
) -> Dict[str, List[ScenarioRunResult]]:
    grid: Dict[str, List[ScenarioRunResult]] = {}
    for scenario in scenarios:
        grid[scenario] = [
            run_scenario(
                scenario, policy, cache_gb=cache_gb, iterations=iterations, seed=seed
            )
            for policy in POLICY_SET
        ]
    return grid


def report(grid: Dict[str, List[ScenarioRunResult]]) -> str:
    sections = []
    for scenario, results in grid.items():
        rows = [
            (
                r.policy,
                f"{r.total_time_s:.0f}",
                f"{r.effective_cpu_util:.3f}",
                f"{r.hit_ratio:.2%}",
                f"{r.peak_cache_gb:.1f}",
            )
            for r in results
        ]
        sections.append(
            format_table(
                ["policy", "exec time (s)", "CPU util", "hit ratio", "peak cache (GB)"],
                rows,
                title=f"Figs 11-13 [{scenario}]: couler vs fifo vs lru "
                f"(cache {results[0].cache_gb:.0f}G)",
            )
        )
    return "\n\n".join(sections)


def main() -> None:
    print(report(run()))


if __name__ == "__main__":
    main()
