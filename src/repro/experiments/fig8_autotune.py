"""Fig. 8 — automatic hyperparameter configuration (CV + NLP).

Runs Algorithm 4 over the ViT-style CV task and the nanoGPT-style NLP
task: the tuner selects a configuration from predicted training logs,
then all three configurations (HP:Ours, HP-baseline1 = expert,
HP-baseline2 = literature) are trained on the *ground-truth* surrogate
and their loss/accuracy curves reported.  Expected shape: Ours reaches
the lowest loss and (for CV) the highest accuracy.
"""

from __future__ import annotations

from typing import Dict

from ..autotune import (
    AutoTuner,
    NANOGPT_DATA,
    NANOGPT_MODEL,
    TrainingSurrogate,
    VIT_CIFAR_DATA,
    VIT_MODEL,
    default_candidate_grid,
    expert_baseline,
    literature_baseline,
    make_llm_log_predictor,
)
from .reporting import format_table


def _run_domain(data, model, seed: int, epochs: int) -> Dict[str, object]:
    surrogate = TrainingSurrogate(data, model, seed=seed)
    tuner = AutoTuner(make_llm_log_predictor(surrogate, fidelity=0.85, seed=seed + 1))
    candidates = default_candidate_grid(model, epochs=epochs)
    tuned = tuner.tune(data, model, candidates)

    configs = {
        "HP:Ours": tuned.best,
        "HP-baseline1": expert_baseline(model, epochs=epochs),
        "HP-baseline2": literature_baseline(model, epochs=epochs),
    }
    curves = {label: surrogate.train(hp) for label, hp in configs.items()}
    return {
        "chosen": tuned.best.render(),
        "curves": curves,
        "final": {
            label: {
                "loss": curve.final_loss,
                "accuracy": curve.final_accuracy,
            }
            for label, curve in curves.items()
        },
    }


def run(seed: int = 3, epochs: int = 10) -> Dict[str, Dict[str, object]]:
    return {
        "cv": _run_domain(VIT_CIFAR_DATA, VIT_MODEL, seed=seed, epochs=epochs),
        "nlp": _run_domain(NANOGPT_DATA, NANOGPT_MODEL, seed=seed, epochs=epochs),
    }


def report(results: Dict[str, Dict[str, object]]) -> str:
    sections = []
    for domain, payload in results.items():
        rows = [
            (label, f"{final['loss']:.3f}", f"{final['accuracy']:.3f}")
            for label, final in payload["final"].items()
        ]
        sections.append(
            format_table(
                ["configuration", "final loss", "final accuracy"],
                rows,
                title=f"Fig 8 [{domain}]: auto HP configuration "
                f"(chosen: {payload['chosen']})",
            )
        )
        ours = payload["curves"]["HP:Ours"]
        curve = ", ".join(
            f"(e{m.epoch}, loss={m.loss:.2f}, acc={m.accuracy:.2f})"
            for m in ours.epochs[:: max(1, len(ours.epochs) // 5)]
        )
        sections.append(f"  HP:Ours curve: {curve}")
    return "\n\n".join(sections)


def main() -> None:
    print(report(run()))


if __name__ == "__main__":
    main()
