"""Ablation — components and weights of the caching importance factor.

DESIGN.md Section 5: drop each Eq. 6 term (reconstruction cost L, reuse
value F, cache cost V) individually, and sweep alpha/beta around the
production choice (alpha=1.5, beta=1), measuring execution time and hit
ratio on the multimodal scenario.  Expected: the reuse term carries
most of the benefit; the full score is at least as good as any ablated
variant; results are not hypersensitive to alpha/beta near the default.
"""

from __future__ import annotations

from typing import Dict

from ..caching.score import ScoreWeights
from .caching_runner import ScenarioRunResult, run_scenario
from .reporting import format_table

DEFAULT_CONFIGS = {
    "full (a=1.5, b=1)": ScoreWeights(alpha=1.5, beta=1.0),
    "no reconstruction (L off)": ScoreWeights(alpha=1.5, beta=1.0, use_reconstruction=False),
    "no reuse (F off)": ScoreWeights(alpha=1.5, beta=1.0, use_reuse=False),
    "no cache cost (V off)": ScoreWeights(alpha=1.5, beta=1.0, use_cache_cost=False),
    "alpha=0.5": ScoreWeights(alpha=0.5, beta=1.0),
    "alpha=3.0": ScoreWeights(alpha=3.0, beta=1.0),
    "beta=0.5": ScoreWeights(alpha=1.5, beta=0.5),
    "beta=2.0": ScoreWeights(alpha=1.5, beta=2.0),
}


def run(
    scenario: str = "multimodal",
    cache_gb: float = 20.0,
    iterations: int = 3,
    seed: int = 0,
    configs: Dict[str, ScoreWeights] = None,
) -> Dict[str, ScenarioRunResult]:
    configs = configs or DEFAULT_CONFIGS
    return {
        label: run_scenario(
            scenario,
            "couler",
            cache_gb=cache_gb,
            iterations=iterations,
            seed=seed,
            weights=weights,
        )
        for label, weights in configs.items()
    }


def report(results: Dict[str, ScenarioRunResult]) -> str:
    rows = [
        (
            label,
            f"{r.total_time_s:.0f}",
            f"{r.hit_ratio:.2%}",
            f"{r.peak_cache_gb:.1f}",
        )
        for label, r in results.items()
    ]
    return format_table(
        ["configuration", "exec time (s)", "hit ratio", "peak cache (GB)"],
        rows,
        title="Ablation: caching importance factor components (Eq. 6)",
    )


def main() -> None:
    print(report(run()))


if __name__ == "__main__":
    main()
