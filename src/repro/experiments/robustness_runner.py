"""Robustness under injected infrastructure faults.

The paper's operator runs on a shared production cluster where nodes
die, pods get preempted, and the controller itself is redeployed
mid-flight; workflow completion is expected to survive all of it
(Appendix B.B's failure handling).  This experiment drives a seeded
fleet through a fixed storm — a node crash, a wave of pod evictions, a
cache-tier outage, and one operator restart mid-run — and then proves
three properties:

1. **Recovery**: every workflow still completes.
2. **Determinism**: an identical second run produces byte-identical
   final records (fault injection is replayable, so regressions in the
   recovery path show up as diffs, not flakes).
3. **Conservation**: the invariant checker finds no leaked node
   allocations, reservations, or quota charges afterwards.

The ``--journal`` lane (:func:`run_journal`) storms the journal-backed
sharded fleet instead: replicas are hard-killed mid-run (nothing
journaled, pods lost) and replaced by fresh processes that recover by
pure journal replay.  It proves recovery, replayed determinism (digest
printed for CI diffing), calm-run output equivalence, and that
materializing *any* prefix of the journal yields resumable records
(no step left Running).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..chaos import (
    CacheOutage,
    ChaosInjector,
    ChaosPlan,
    NodeCrash,
    OperatorRestart,
    PodEviction,
    full_check,
)
from ..engine.admission import AdmissionPipeline
from ..engine.journal import Journal, JournalRecord
from ..engine.operator import WorkflowOperator
from ..engine.replicas import ShardedOperatorFleet
from ..engine.simclock import SimClock
from ..engine.spec import ArtifactSpec, ExecutableStep, ExecutableWorkflow
from ..engine.status import StepStatus, WorkflowPhase, WorkflowRecord
from ..k8s.cluster import Cluster
from ..k8s.resources import ResourceQuantity
from ..workloads.arrivals import PoissonArrivalProcess
from .reporting import format_table

GB = 2**30

#: One record fingerprint: everything that must match between two runs.
Fingerprint = Tuple[str, str, Optional[float], Tuple[tuple, ...]]


def _fleet(num_workflows: int, seed: int) -> List[ExecutableWorkflow]:
    """Seeded three-layer pipelines with inter-step artifacts.

    Steps carry input artifacts so the cache-outage fault actually has
    a surface to hit (an outage only stalls steps that read data).
    """
    rng = random.Random(seed)
    workflows = []
    for index in range(num_workflows):
        workflow = ExecutableWorkflow(name=f"wf-{index}")
        previous_stage: Optional[str] = None
        previous_outputs: List[ArtifactSpec] = []
        for layer, stage in enumerate(("extract", "train", "publish")):
            output = ArtifactSpec(
                uid=f"wf-{index}/{stage}/out",
                size_bytes=int((0.2 + rng.random()) * GB),
            )
            workflow.add_step(
                ExecutableStep(
                    name=stage,
                    duration_s=40 + rng.random() * 80,
                    requests=ResourceQuantity(
                        cpu=2.0 + 2.0 * (layer == 1), memory=2 * GB
                    ),
                    dependencies=[] if previous_stage is None else [previous_stage],
                    inputs=list(previous_outputs),
                    outputs=[output],
                )
            )
            previous_stage = stage
            previous_outputs = [output]
        workflows.append(workflow)
    return workflows


def storm_plan(horizon: float = 400.0) -> ChaosPlan:
    """The acceptance storm: crash + evictions + outage + restart."""
    return ChaosPlan(
        [
            NodeCrash(at=0.15 * horizon, node="chaos-node-1", duration=0.25 * horizon),
            PodEviction(at=0.25 * horizon, count=2),
            CacheOutage(at=0.35 * horizon, duration=0.1 * horizon),
            PodEviction(at=0.45 * horizon, count=1),
            OperatorRestart(at=0.55 * horizon, downtime=0.05 * horizon),
        ]
    )


@dataclass
class RobustnessRun:
    """Everything one simulated run produced."""

    operator: WorkflowOperator
    records: List[WorkflowRecord]
    injector: ChaosInjector
    makespan: float
    pipeline: Optional[AdmissionPipeline] = None
    fingerprints: List[Fingerprint] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.fingerprints = [
            (
                record.name,
                record.phase.value,
                record.finish_time,
                tuple(
                    (
                        name,
                        step.status.value,
                        step.attempts,
                        step.infra_failures,
                        step.finish_time,
                    )
                    for name, step in sorted(record.steps.items())
                ),
            )
            for record in self.records
        ]
        if self.pipeline is not None:
            # Admission decisions are part of the replayable surface:
            # a regression that re-orders placements or shifts queue
            # waits must show up as a fingerprint diff.
            self.fingerprints.append(
                (
                    "__admission__",
                    "placements",
                    None,
                    tuple(
                        (
                            admission.workflow_name,
                            admission.cluster_name,
                            admission.place_time,
                            admission.deferrals,
                        )
                        for admission in self.pipeline.placed
                    ),
                )
            )


def _run_once(
    seed: int,
    num_workflows: int,
    chaos: bool,
    tracer: Optional[object] = None,
) -> RobustnessRun:
    """One storm against the event-driven admission pipeline.

    The fleet arrives over time (seeded Poisson, open loop) while the
    chaos plan fires, so faults hit workflows in every lifecycle stage:
    still pending admission, queued for placement, and mid-execution.
    """
    cluster = Cluster.uniform(
        "chaos", 4, cpu_per_node=8.0, memory_per_node=32 * GB
    )
    pipeline = AdmissionPipeline(
        [cluster], seed=seed, aging_rate=0.01, tracer=tracer
    )
    arrivals = PoissonArrivalProcess(rate_per_s=0.08, seed=seed).times(num_workflows)
    handles = [
        pipeline.submit_at(at, workflow)
        for at, workflow in zip(arrivals, _fleet(num_workflows, seed))
    ]
    operator = pipeline.operators[cluster.name]
    injector = ChaosInjector(operator, storm_plan() if chaos else ChaosPlan(), seed=seed)
    injector.arm()
    pipeline.run()
    records = [
        handle.record if handle.record is not None else WorkflowRecord(handle.workflow_name)
        for handle in handles
    ]
    return RobustnessRun(
        operator=operator,
        records=records,
        injector=injector,
        makespan=pipeline.clock.now,
        pipeline=pipeline,
    )


def run(
    seed: int = 0, num_workflows: int = 8, tracer: Optional[object] = None
) -> Dict[str, object]:
    """Storm twice (determinism), once calm (cost), then check the books."""
    stormy = _run_once(seed, num_workflows, chaos=True, tracer=tracer)
    replay = _run_once(seed, num_workflows, chaos=True)
    calm = _run_once(seed, num_workflows, chaos=False)

    # Conservation sweep covers the operator *and* the admission
    # pipeline's quota/reservation books — after the storm, nothing may
    # remain allocated, reserved, or charged anywhere.
    invariants = full_check(
        operators=[stormy.operator], queue=stormy.pipeline.queue
    )
    completed = sum(
        1 for r in stormy.records if r.phase == WorkflowPhase.SUCCEEDED
    )
    metrics = stormy.operator.metrics
    return {
        "runs": {"stormy": stormy, "calm": calm},
        "completed": completed,
        "total": num_workflows,
        "deterministic": stormy.fingerprints == replay.fingerprints,
        "invariant_violations": invariants.violations,
        "makespan_chaos": stormy.makespan,
        "makespan_calm": calm.makespan,
        "queue_latency_worst": stormy.pipeline.starvation_gap(),
        "chaos_counters": metrics.counters_with_prefix("chaos_"),
        "infra_retries": {
            dict(key).get("pattern", "?"): value
            for key, value in metrics.counter(
                "engine_infra_retries_total"
            ).series().items()
        },
        "fault_log": stormy.injector.log,
    }


def report(results: Dict[str, object]) -> str:
    stormy: RobustnessRun = results["runs"]["stormy"]
    rows = []
    for record in stormy.records:
        attempts = sum(step.attempts for step in record.steps.values())
        infra = sum(step.infra_failures for step in record.steps.values())
        rows.append(
            (
                record.name,
                record.phase.value,
                attempts,
                infra,
                attempts - infra,
                f"{record.finish_time:.0f}s" if record.finish_time else "-",
            )
        )
    table = format_table(
        ["workflow", "phase", "attempts", "infra faults", "app attempts", "finished"],
        rows,
        title="Robustness: fleet under node crash / evictions / outage / restart",
    )
    retries = ", ".join(
        f"{pattern}={count:.0f}"
        for pattern, count in sorted(results["infra_retries"].items())
    )
    lines = [
        f"completed {results['completed']}/{results['total']} workflows "
        f"(makespan {results['makespan_chaos']:.0f}s vs {results['makespan_calm']:.0f}s calm)",
        f"deterministic replay: {'yes' if results['deterministic'] else 'NO — RECOVERY PATH REGRESSED'}",
        "invariants: "
        + (
            "clean (no leaked allocations, reservations, or quota)"
            if not results["invariant_violations"]
            else "; ".join(results["invariant_violations"])
        ),
        f"infra retries (budget-free): {retries or 'none'}",
        f"worst admission-queue wait: {results['queue_latency_worst']:.0f}s "
        "(event-driven placement, arrival-staggered fleet)",
    ]
    return table + "\n\n" + "\n".join(lines)


# --------------------------------------------------------------------------
# --journal lane: replica kill + replay over the journal-backed fleet
# --------------------------------------------------------------------------


def _record_fingerprint(record: WorkflowRecord) -> Fingerprint:
    return (
        record.name,
        record.phase.value,
        record.finish_time,
        tuple(
            (name, step.status.value, step.attempts, step.infra_failures,
             step.finish_time)
            for name, step in sorted(record.steps.items())
        ),
    )


def _output_fingerprint(record: WorkflowRecord) -> tuple:
    """Scheduling-independent view: what the workflow produced.

    Attempt counts and timings legitimately differ between a calm run
    and one whose replica was killed mid-flight; statuses and results
    must not.
    """
    return (
        record.name,
        record.phase.value,
        tuple((name, step.status.value) for name, step in sorted(record.steps.items())),
        tuple(sorted(record.results.items())),
    )


@dataclass
class JournalRun:
    """One journal-backed fleet run (possibly with replica kills)."""

    journal: Journal
    records: List[WorkflowRecord]
    makespan: float
    kills: List[Tuple[float, int]] = field(default_factory=list)

    @property
    def fingerprints(self) -> List[Fingerprint]:
        return [_record_fingerprint(record) for record in self.records]

    def digest(self) -> str:
        """Deterministic digest of the full run surface, for CI diffing."""
        blob = repr(
            (self.fingerprints, [r.to_json() for r in self.journal.records()])
        ).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()[:16]


def _run_journal_once(
    seed: int, num_workflows: int, replicas: int, kills: bool
) -> JournalRun:
    """One fleet run; with ``kills``, hard-kill and replay two replicas."""
    clock = SimClock()
    cluster = Cluster.uniform("chaos", 4, cpu_per_node=8.0, memory_per_node=32 * GB)
    journal = Journal()
    fleet = ShardedOperatorFleet(
        clock, cluster, replicas=replicas, journal=journal, seed=seed
    )
    workflows = _fleet(num_workflows, seed)
    for workflow in workflows:
        fleet.submit(workflow)
    kill_log: List[Tuple[float, int]] = []
    if kills:
        # Two kill waves mid-run: nothing is journaled about the kill
        # itself — the replacement replica must discover the damage
        # (started-but-unsettled attempts) purely from the journal.
        for at, index in ((60.0, 0), (150.0, 1 % replicas)):
            clock.run(until=at)
            fleet.kill_replica(index)
            fleet.resume_replica(index)
            kill_log.append((at, index))
    fleet.run_to_completion()
    by_name = fleet.records_by_name()
    records = [
        by_name.get(workflow.name, WorkflowRecord(name=workflow.name))
        for workflow in workflows
    ]
    return JournalRun(
        journal=journal, records=records, makespan=clock.now, kills=kill_log
    )


def run_journal(
    seed: int = 0, num_workflows: int = 8, replicas: int = 3
) -> Dict[str, object]:
    """Storm the sharded journal-backed fleet; prove replay recovery.

    Four gates: every workflow completes despite two replica
    hard-kills; the whole scenario (records *and* journal bytes) is
    deterministic under replay; outputs match a calm journaled run; and
    every quartile prefix of the journal materializes to resumable
    records — no step Running, and the full-stream replay reproduces
    the live records exactly.
    """
    stormy = _run_journal_once(seed, num_workflows, replicas, kills=True)
    replay = _run_journal_once(seed, num_workflows, replicas, kills=True)
    calm = _run_journal_once(seed, num_workflows, replicas, kills=False)

    completed = sum(
        1 for record in stormy.records if record.phase == WorkflowPhase.SUCCEEDED
    )
    deterministic = stormy.digest() == replay.digest()
    calm_equivalent = sorted(
        _output_fingerprint(r) for r in stormy.records
    ) == sorted(_output_fingerprint(r) for r in calm.records)

    # Replay-from-any-prefix: a replica may die at *any* journal
    # position; whatever its replacement materializes must be
    # immediately resumable.
    prefix_violations: List[str] = []
    total = len(stormy.journal)
    for n in sorted({total // 4, total // 2, (3 * total) // 4, total}):
        prefix = stormy.journal.prefix(n)
        for stream in prefix.streams():
            record = prefix.materialize(stream)
            if record is None:
                continue
            running = [
                name
                for name, step in record.steps.items()
                if step.status == StepStatus.RUNNING
            ]
            if running:
                prefix_violations.append(
                    f"prefix {n}: stream {stream} left Running steps {running}"
                )

    # Full-stream replay must reproduce each live record exactly, and
    # the journal must survive a serialization round-trip.
    replay_mismatches = [
        record.name
        for record in stormy.records
        if stormy.journal.materialize(record.name) is not None
        and _record_fingerprint(stormy.journal.materialize(record.name))
        != _record_fingerprint(record)
    ]
    roundtrip_ok = all(
        JournalRecord.from_json(record.to_json()) == record
        for record in stormy.journal.records()
    )
    return {
        "completed": completed,
        "total": num_workflows,
        "replicas": replicas,
        "kills": stormy.kills,
        "deterministic": deterministic,
        "digest": stormy.digest(),
        "calm_equivalent": calm_equivalent,
        "prefix_violations": prefix_violations,
        "replay_mismatches": replay_mismatches,
        "roundtrip_ok": roundtrip_ok,
        "journal_events": len(stormy.journal),
        "makespan_chaos": stormy.makespan,
        "makespan_calm": calm.makespan,
    }


def report_journal(results: Dict[str, object]) -> str:
    kills = ", ".join(
        f"replica {index} at {at:.0f}s" for at, index in results["kills"]
    )
    lines = [
        "Journal lane: replica hard-kills + replay over the sharded fleet",
        f"completed {results['completed']}/{results['total']} workflows on "
        f"{results['replicas']} replicas (kills: {kills or 'none'}; "
        f"makespan {results['makespan_chaos']:.0f}s vs "
        f"{results['makespan_calm']:.0f}s calm)",
        f"journal: {results['journal_events']} events, "
        f"serialization round-trip {'ok' if results['roundtrip_ok'] else 'BROKEN'}",
        f"deterministic replay digest: {results['digest']} "
        f"({'stable' if results['deterministic'] else 'UNSTABLE — REPLAY REGRESSED'})",
        "calm-run output equivalence: "
        + ("yes" if results["calm_equivalent"] else "NO — KILLS CHANGED OUTPUTS"),
        "prefix replay: "
        + (
            "every prefix materializes resumable records"
            if not results["prefix_violations"]
            else "; ".join(results["prefix_violations"])
        ),
        "full replay vs live records: "
        + (
            "identical"
            if not results["replay_mismatches"]
            else "MISMATCH on " + ", ".join(results["replay_mismatches"])
        ),
    ]
    return "\n".join(lines)


def journal_ok(results: Dict[str, object]) -> bool:
    return bool(
        results["completed"] == results["total"]
        and results["deterministic"]
        and results["calm_equivalent"]
        and results["roundtrip_ok"]
        and not results["prefix_violations"]
        and not results["replay_mismatches"]
    )


def main() -> None:
    print(report(run()))


if __name__ == "__main__":
    main()
