"""Functional-equivalence check between generated and expected IR.

A generated sample *passes* when its IR matches the reference IR the
canonical program produces: same step names with the same operations and
images, the same dependency edges, and the same conditions.  This is the
executable analogue of the unit-test check behind pass@k in code-
generation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..ir.graph import WorkflowIR


@dataclass
class ValidationReport:
    """Outcome of comparing a generated IR against the reference."""

    ok: bool
    problems: List[str] = field(default_factory=list)


def compare_ir(expected: WorkflowIR, actual: WorkflowIR) -> ValidationReport:
    """Structural equivalence with actionable problem strings."""
    problems: List[str] = []
    expected_names = set(expected.nodes)
    actual_names = set(actual.nodes)
    missing = expected_names - actual_names
    extra = actual_names - expected_names
    if missing:
        problems.append(f"missing steps: {sorted(missing)}")
    if extra:
        problems.append(f"unexpected steps: {sorted(extra)}")
    for name in sorted(expected_names & actual_names):
        e_node, a_node = expected.nodes[name], actual.nodes[name]
        if e_node.op != a_node.op:
            problems.append(f"step {name}: op {a_node.op} != {e_node.op}")
        if e_node.image != a_node.image:
            problems.append(f"step {name}: image {a_node.image!r} != {e_node.image!r}")
        if e_node.when != a_node.when:
            problems.append(f"step {name}: condition differs")
    if expected.edges != actual.edges:
        lost = expected.edges - actual.edges
        gained = actual.edges - expected.edges
        if lost:
            problems.append(f"missing edges: {sorted(lost)}")
        if gained:
            problems.append(f"unexpected edges: {sorted(gained)}")
    return ValidationReport(ok=not problems, problems=problems)
