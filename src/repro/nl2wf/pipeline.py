"""Algorithm 1: NL description -> executable unified programming code.

The four steps, exactly as the paper lays them out:

1. **Modular decomposition** — chain-of-thought split of the NL
   description into concise task modules of predefined types.
2. **Code generation** — per subtask, retrieve a relevant reference from
   the Code Lake and generate code with the LLM.
3. **Self-calibration** — the LLM critiques each snippet; while its
   score falls below the baseline score ``S_b`` the snippet is
   regenerated (bounded, since "there may be complex scenarios in which
   achieving the desired score is impractical").
4. **User feedback** — on validation failure the user pinpoints the
   offending module in text and the code is refined once more.

Ablation switches (``use_retrieval`` / ``use_calibration``) exist for
the Table II configuration study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..ir.graph import WorkflowIR
from ..llm.codelake import CodeLake, canonical_code
from ..llm.simulated import SimulatedLLM, SubtaskSpec
from .corpus import NLTask
from .executor import CodeExecutionError, execute_couler_code
from .validate import ValidationReport, compare_ir


@dataclass
class ModuleGeneration:
    """What happened while generating one subtask's code."""

    subtask: SubtaskSpec
    code: str
    attempts: int
    final_score: float
    used_reference: bool


@dataclass
class ConversionResult:
    """End-to-end outcome for one NL task."""

    task_name: str
    code: str
    ir: Optional[WorkflowIR]
    passed: bool
    report: Optional[ValidationReport] = None
    modules: List[ModuleGeneration] = field(default_factory=list)
    error: Optional[str] = None
    feedback_rounds: int = 0


class NLToWorkflow:
    """The Algorithm 1 driver ("+Ours" in Table II)."""

    def __init__(
        self,
        llm: SimulatedLLM,
        code_lake: Optional[CodeLake] = None,
        baseline_score: float = 0.7,
        max_regenerations: int = 2,
        use_retrieval: bool = True,
        use_calibration: bool = True,
    ) -> None:
        if not 0.0 <= baseline_score <= 1.0:
            raise ValueError(f"baseline_score must be in [0,1]: {baseline_score}")
        self.llm = llm
        self.code_lake = code_lake or llm.code_lake
        self.baseline_score = baseline_score
        self.max_regenerations = max_regenerations
        self.use_retrieval = use_retrieval
        self.use_calibration = use_calibration

    # ------------------------------------------------------------ internals

    def _is_canonical(self, subtask: SubtaskSpec, code: str) -> bool:
        """Hidden truth for the critic: does the snippet match the
        canonical template for its (believed) task type?"""
        return code == canonical_code(subtask.task_type, dict(subtask.params))

    def _generate_module(self, subtask: SubtaskSpec) -> ModuleGeneration:
        reference = None
        if self.use_retrieval:
            reference = self.code_lake.best_reference(
                f"{subtask.task_type} {subtask.text}"
            )
        response = self.llm.generate_subtask_code(subtask, reference)
        code = response.text
        attempts = 1
        score = 1.0
        if self.use_calibration:
            score, _ = self.llm.critique(code, self._is_canonical(subtask, code))
            while score < self.baseline_score and attempts <= self.max_regenerations:
                response = self.llm.generate_subtask_code(subtask, reference)
                code = response.text
                attempts += 1
                score, _ = self.llm.critique(code, self._is_canonical(subtask, code))
        return ModuleGeneration(
            subtask=subtask,
            code=code,
            attempts=attempts,
            final_score=score,
            used_reference=reference is not None,
        )

    def _assemble_and_validate(
        self, task: NLTask, modules: List[ModuleGeneration]
    ) -> ConversionResult:
        program = "\n".join(m.code for m in modules)
        result = ConversionResult(
            task_name=task.name, code=program, ir=None, passed=False, modules=modules
        )
        try:
            result.ir = execute_couler_code(program, workflow_name=task.name)
        except CodeExecutionError as exc:
            result.error = str(exc)
            return result
        result.report = compare_ir(task.expected_ir(), result.ir)
        result.passed = result.report.ok
        return result

    # --------------------------------------------------------------- public

    def convert(self, task: NLTask, user_feedback_rounds: int = 0) -> ConversionResult:
        """Run Algorithm 1 on one task.

        ``user_feedback_rounds > 0`` enables Step 4: after a failed
        validation the "user" points at the modules whose code deviates
        from the expected behaviour and the LLM refines them.
        """
        self.llm.begin_task(task.description)
        believed = self.llm.decompose(task.description)
        modules = [self._generate_module(subtask) for subtask in believed]
        result = self._assemble_and_validate(task, modules)

        rounds = 0
        while not result.passed and rounds < user_feedback_rounds:
            rounds += 1
            feedback = self._feedback_text(task, result)
            modules = [
                self._refine_module(m, feedback) if not self._module_ok(task, m) else m
                for m in modules
            ]
            result = self._assemble_and_validate(task, modules)
            result.feedback_rounds = rounds
        return result

    def convert_single_shot(self, task: NLTask) -> ConversionResult:
        """The raw-model baseline: one whole-workflow generation."""
        self.llm.begin_task(task.description)
        response = self.llm.generate_workflow_code(task.description)
        result = ConversionResult(
            task_name=task.name, code=response.text, ir=None, passed=False
        )
        try:
            result.ir = execute_couler_code(response.text, workflow_name=task.name)
        except CodeExecutionError as exc:
            result.error = str(exc)
            return result
        result.report = compare_ir(task.expected_ir(), result.ir)
        result.passed = result.report.ok
        return result

    # ------------------------------------------------------------- feedback

    def _module_ok(self, task: NLTask, module: ModuleGeneration) -> bool:
        truth_types = {m.task_type for m in task.modules}
        return (
            module.subtask.task_type in truth_types
            and self._is_canonical(module.subtask, module.code)
        )

    @staticmethod
    def _feedback_text(task: NLTask, result: ConversionResult) -> str:
        if result.error:
            return f"The workflow failed to execute: {result.error}"
        problems = result.report.problems if result.report else []
        return "The workflow structure is wrong: " + "; ".join(problems[:3])

    def _refine_module(
        self, module: ModuleGeneration, feedback: str
    ) -> ModuleGeneration:
        response = self.llm.refine_with_feedback(
            module.subtask, module.code, feedback
        )
        return ModuleGeneration(
            subtask=module.subtask,
            code=response.text,
            attempts=module.attempts + 1,
            final_score=module.final_score,
            used_reference=module.used_reference,
        )
