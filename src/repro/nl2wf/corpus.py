"""NL task corpus for the code-generation evaluation (Table II).

The paper's workload contains 26 training scenarios; this corpus
mirrors that scale with 26 natural-language workflow descriptions, each
carrying its ground-truth modular decomposition (the thing Step 1 must
recover) and enough parameters to render the canonical code.  The
expected IR for a task is obtained by executing the canonical snippets
— i.e. the ground truth is defined by the same executable semantics the
generated code is judged against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..ir.graph import WorkflowIR
from ..llm.codelake import canonical_code
from ..llm.simulated import SubtaskSpec
from .executor import execute_couler_code


@dataclass(frozen=True)
class NLTask:
    """One evaluation task: description + ground-truth decomposition."""

    name: str
    description: str
    modules: List[SubtaskSpec] = field(default_factory=list)

    def canonical_program(self) -> str:
        """The ground-truth Couler program (all canonical snippets)."""
        pieces = [canonical_code(m.task_type, dict(m.params)) for m in self.modules]
        return "\n".join(pieces)

    def expected_ir(self) -> WorkflowIR:
        """Execute the canonical program to obtain the reference IR."""
        return execute_couler_code(self.canonical_program(), workflow_name=self.name)


_MODULE_TEXT = {
    "data_loading": "Load the {dataset} dataset from remote storage.",
    "data_preprocessing": "Preprocess and clean the raw {dataset} data.",
    "data_augmentation": "Augment the training data with synthetic variations.",
    "model_training": "Train the candidate models {models} on the prepared data.",
    "model_evaluation": "Validate each trained model using the validation data.",
    "model_comparison": "Compare the evaluation metrics across all models.",
    "model_selection": "Select the best-performing model.",
    "model_deployment": "Deploy the selected model to the serving environment.",
    "hyperparameter_tuning": "Sweep batch sizes to tune the training hyperparameters.",
    "report_generation": "Generate a final analysis report of the results.",
}

#: Paraphrased module texts: same semantics, different surface forms —
#: used to check the Step-1 decomposer is not keyed to one phrasing.
_MODULE_TEXT_ALTERNATE = {
    "data_loading": "Ingest the {dataset} dataset from cold storage.",
    "data_preprocessing": "Normalize and transform the raw {dataset} data.",
    "data_augmentation": "Enrich the data with synthetic variations.",
    "model_training": "Fit the candidate models {models} on the prepared data.",
    "model_evaluation": "Evaluate each fitted model on held-out data.",
    "model_comparison": "Compare metrics across all fitted models.",
    "model_selection": "Choose the best model based on the scores.",
    "model_deployment": "Push the model to the serving environment.",
    "hyperparameter_tuning": "Sweep learning rates to find good hyperparameters.",
    "report_generation": "Document the results in a summary report.",
}


def _spec(
    task_type: str,
    dataset: str,
    models: Sequence[str],
    data_var: str,
    ranking_var: str,
    style: str = "default",
) -> SubtaskSpec:
    texts = _MODULE_TEXT_ALTERNATE if style == "alternate" else _MODULE_TEXT
    text = texts[task_type].format(dataset=dataset, models=list(models))
    return SubtaskSpec(
        text=text,
        task_type=task_type,
        params={
            "dataset": dataset,
            "models": list(models),
            "data_var": data_var,
            "ranking_var": ranking_var,
        },
    )


def _task(
    name: str,
    intro: str,
    dataset: str,
    models: Sequence[str],
    sequence: Sequence[str],
    style: str = "default",
) -> NLTask:
    data_var = "raw_data"
    # model_selection reads the comparison ranking when present,
    # otherwise directly the per-model evaluation results.
    ranking_var = "ranking" if "model_comparison" in sequence else "eval_results"
    modules: List[SubtaskSpec] = []
    for task_type in sequence:
        modules.append(
            _spec(task_type, dataset, models, data_var, ranking_var, style=style)
        )
        if task_type == "data_preprocessing":
            data_var = "clean_data"
        elif task_type == "data_augmentation":
            data_var = "augmented_data"
    description = intro + " " + " ".join(m.text for m in modules)
    return NLTask(name=name, description=description, modules=modules)


def build_task(
    name: str,
    intro: str,
    dataset: str,
    models: Sequence[str],
    sequence: Sequence[str],
    style: str = "default",
) -> NLTask:
    """Assemble one NL task from a module-type sequence.

    The public entry point the scenario corpus
    (:mod:`repro.workloads.corpus`) uses to mint seeded NL-planned
    workflows beyond the fixed Table II set.  ``sequence`` must respect
    the variable-threading rules the canonical snippets assume:
    ``model_training`` needs a prior data stage, ``model_selection``
    needs ``model_evaluation`` (or ``model_comparison``) before it.
    """
    known = set(_MODULE_TEXT)
    unknown = [task_type for task_type in sequence if task_type not in known]
    if unknown:
        raise ValueError(f"unknown module type(s) {unknown}; choose from {sorted(known)}")
    return _task(
        name=name,
        intro=intro,
        dataset=dataset,
        models=models,
        sequence=sequence,
        style=style,
    )


#: Module sequences seen in production workflows (all start with
#: data_loading; variable threading is handled by _task).
_SEQUENCES: Dict[str, List[str]] = {
    "select-best": [
        "data_loading",
        "data_preprocessing",
        "model_training",
        "model_evaluation",
        "model_comparison",
        "model_selection",
    ],
    "train-eval": [
        "data_loading",
        "data_preprocessing",
        "model_training",
        "model_evaluation",
    ],
    "augmented": [
        "data_loading",
        "data_preprocessing",
        "data_augmentation",
        "model_training",
        "model_evaluation",
        "model_selection",
    ],
    "deploy": [
        "data_loading",
        "data_preprocessing",
        "model_training",
        "model_evaluation",
        "model_selection",
        "model_deployment",
    ],
    "tune": [
        "data_loading",
        "data_preprocessing",
        "hyperparameter_tuning",
        "report_generation",
    ],
    "report": [
        "data_loading",
        "data_preprocessing",
        "model_training",
        "model_evaluation",
        "report_generation",
    ],
    "quick": [
        "data_loading",
        "model_training",
        "model_evaluation",
    ],
}

_SCENARIOS = [
    ("market-trends", "I need to design a workflow to predict market trends.",
     "market-ticks", ["lstm", "arima", "transformer"]),
    ("image-classify", "I need to design a workflow to select the optimal image classification model.",
     "imagenet-subset", ["resnet", "vit", "densenet"]),
    ("churn", "Build a workflow that predicts customer churn for a telco.",
     "telco-churn", ["xgboost", "lightgbm"]),
    ("sentiment", "Create a workflow for sentiment analysis over product reviews.",
     "reviews-corpus", ["bert", "lstm"]),
    ("fraud", "Design a fraud detection training workflow over transactions.",
     "transactions", ["gbdt", "mlp"]),
    ("ads-ctr", "Build a click-through-rate prediction workflow for ads.",
     "ads-logs", ["wide-deep", "deepfm"]),
    ("segmentation", "Create an image segmentation training workflow.",
     "cityscapes-like", ["unet", "deeplab"]),
    ("lm-finetune", "Fine-tune language models for text classification.",
     "text-20gb", ["nanogpt", "bert"]),
]


def build_corpus(style: str = "default", size: int = 26) -> List[NLTask]:
    """The 26-task corpus used by the Table II / Table III experiments.

    ``style="alternate"`` renders every module text with a paraphrase
    (same semantics, different surface form) — used to confirm the
    Step-1 decomposer does not overfit one phrasing.
    """
    tasks: List[NLTask] = []
    sequence_names = list(_SEQUENCES)
    index = 0
    while len(tasks) < size:
        scenario = _SCENARIOS[index % len(_SCENARIOS)]
        seq_name = sequence_names[index % len(sequence_names)]
        name, intro, dataset, models = scenario
        suffix = "" if style == "default" else f"-{style}"
        tasks.append(
            _task(
                name=f"{name}-{seq_name}{suffix}",
                intro=intro,
                dataset=dataset,
                models=models,
                sequence=_SEQUENCES[seq_name],
                style=style,
            )
        )
        index += 1
    return tasks
