"""Execute generated Couler code and capture the resulting IR.

Generated (or canonical) programs are plain Python against the
``couler`` unified interface.  Execution happens in a fresh workflow
context with a dedicated namespace; the produced IR is the object the
validator compares against the task's expected IR.  Any exception the
program raises (syntax errors, unknown API names, missing arguments)
propagates as :class:`CodeExecutionError` — a failed sample.
"""

from __future__ import annotations

from ..ir.graph import WorkflowIR


class CodeExecutionError(RuntimeError):
    """Generated code failed to execute (the sample does not pass)."""


def execute_couler_code(code: str, workflow_name: str = "generated") -> WorkflowIR:
    """Run ``code`` against a fresh Couler context and return its IR.

    The namespace exposes exactly what the prompt promises: the
    ``couler`` module.  The caller's own context is restored afterwards
    so evaluation loops cannot leak state between samples.
    """
    from .. import core as couler

    couler.reset_context(workflow_name)
    namespace = {"couler": couler}
    try:
        exec(compile(code, f"<generated:{workflow_name}>", "exec"), namespace)
        ir = couler.workflow_ir(optimize=False)
    except Exception as exc:  # noqa: BLE001 - any generation bug = failure
        raise CodeExecutionError(f"{type(exc).__name__}: {exc}") from exc
    finally:
        couler.reset_context()
    return ir
