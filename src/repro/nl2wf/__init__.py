"""NL -> unified programming interface (paper Sec. III, Algorithm 1)."""

from .corpus import NLTask, build_corpus, build_task
from .decompose import classify_sentence, decompose_description, extract_dataset, extract_models
from .executor import CodeExecutionError, execute_couler_code
from .passk import (
    DEFAULT_KS,
    DEFAULT_TEMPERATURES,
    PassKResult,
    evaluate_sampler,
    make_ours_sampler,
    make_raw_sampler,
    pass_at_k,
)
from .pipeline import ConversionResult, ModuleGeneration, NLToWorkflow
from .validate import ValidationReport, compare_ir

__all__ = [
    "CodeExecutionError",
    "ConversionResult",
    "DEFAULT_KS",
    "DEFAULT_TEMPERATURES",
    "ModuleGeneration",
    "NLTask",
    "NLToWorkflow",
    "PassKResult",
    "ValidationReport",
    "build_corpus",
    "build_task",
    "classify_sentence",
    "decompose_description",
    "extract_dataset",
    "extract_models",
    "compare_ir",
    "evaluate_sampler",
    "execute_couler_code",
    "make_ours_sampler",
    "make_raw_sampler",
    "pass_at_k",
]
