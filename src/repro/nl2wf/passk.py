"""pass@k evaluation harness (Table II).

Follows the Codex/CodeGen evaluation procedure the paper cites: for
each task draw ``n`` independent samples, count correct ones ``c``, and
estimate ``pass@k = 1 - C(n-c, k) / C(n, k)`` (the unbiased estimator).
Each model is evaluated at temperatures {0.2, 0.6, 0.8} and the best
temperature per k is reported.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

from ..llm.simulated import PROFILES, SimulatedLLM
from .corpus import NLTask
from .pipeline import NLToWorkflow

DEFAULT_TEMPERATURES = (0.2, 0.6, 0.8)
DEFAULT_KS = (1, 3, 5)


def pass_at_k(n: int, c: int, k: int) -> float:
    """Unbiased pass@k estimator from n samples with c passes."""
    if n <= 0:
        raise ValueError("n must be > 0")
    if not 0 <= c <= n:
        raise ValueError(f"c must be in [0, n]: c={c}, n={n}")
    if k > n:
        raise ValueError(f"k must be <= n: k={k}, n={n}")
    if n - c < k:
        return 1.0
    return 1.0 - math.prod((n - c - i) / (n - i) for i in range(k))


@dataclass
class SampleOutcome:
    task_name: str
    temperature: float
    passed: bool


@dataclass
class PassKResult:
    """pass@k per temperature plus the best-per-k row Table II reports."""

    model: str
    variant: str  # "raw" or "ours"
    per_temperature: Dict[float, Dict[int, float]] = field(default_factory=dict)

    def best_per_k(self, ks: Sequence[int] = DEFAULT_KS) -> Dict[int, float]:
        return {
            k: max(scores[k] for scores in self.per_temperature.values())
            for k in ks
        }


#: A sampler maps (task, temperature, sample_index) -> passed?
Sampler = Callable[[NLTask, float, int], bool]


def evaluate_sampler(
    tasks: Sequence[NLTask],
    sampler: Sampler,
    num_samples: int = 5,
    temperatures: Sequence[float] = DEFAULT_TEMPERATURES,
    ks: Sequence[int] = DEFAULT_KS,
) -> Dict[float, Dict[int, float]]:
    """Run the sampler over the corpus; mean pass@k per temperature."""
    if num_samples < max(ks):
        raise ValueError("num_samples must be >= max(ks)")
    per_temperature: Dict[float, Dict[int, float]] = {}
    for temperature in temperatures:
        per_task_scores: Dict[int, List[float]] = {k: [] for k in ks}
        for task in tasks:
            passes = sum(
                1
                for index in range(num_samples)
                if sampler(task, temperature, index)
            )
            for k in ks:
                per_task_scores[k].append(pass_at_k(num_samples, passes, k))
        per_temperature[temperature] = {
            k: sum(scores) / len(scores) for k, scores in per_task_scores.items()
        }
    return per_temperature


def make_raw_sampler(model: str, seed: int = 0) -> Sampler:
    """Single-shot whole-workflow generation with the raw model."""

    def sampler(task: NLTask, temperature: float, index: int) -> bool:
        llm = SimulatedLLM(
            PROFILES[model],
            temperature=temperature,
            seed=_sample_seed(seed, task.name, temperature, index),
        )
        pipeline = NLToWorkflow(llm)
        return pipeline.convert_single_shot(task).passed

    return sampler


def make_ours_sampler(
    model: str,
    seed: int = 0,
    use_retrieval: bool = True,
    use_calibration: bool = True,
    baseline_score: float = 0.7,
    user_feedback_rounds: int = 0,
) -> Sampler:
    """The full Algorithm 1 pipeline ("+Ours").

    ``user_feedback_rounds > 0`` additionally enables Step 4 (textual
    user feedback on failed validations).
    """

    def sampler(task: NLTask, temperature: float, index: int) -> bool:
        llm = SimulatedLLM(
            PROFILES[model],
            temperature=temperature,
            seed=_sample_seed(seed, task.name, temperature, index),
        )
        pipeline = NLToWorkflow(
            llm,
            baseline_score=baseline_score,
            use_retrieval=use_retrieval,
            use_calibration=use_calibration,
        )
        return pipeline.convert(
            task, user_feedback_rounds=user_feedback_rounds
        ).passed

    return sampler


def _sample_seed(base: int, task_name: str, temperature: float, index: int) -> int:
    import zlib

    return zlib.crc32(f"{base}|{task_name}|{temperature}|{index}".encode("utf-8"))
