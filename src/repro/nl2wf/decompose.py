"""Rule-based modular decomposition (Step 1's deterministic core).

"A series of predefined task types can be established to identify and
extract pertinent tasks based on the input of natural language
descriptions automatically."  This module is that series: a keyword
classifier over the predefined task types plus parameter extraction
(dataset name, model list), which turns an NL description into
:class:`SubtaskSpec` candidates *without* access to any ground truth.

The simulated LLM layers its error model (drop / mislabel) on top of
these candidates, so the pipeline's Step 1 is mechanistic end to end.
"""

from __future__ import annotations

import ast
import re
from typing import List, Optional

from ..llm.simulated import SubtaskSpec

#: Keyword evidence per predefined task type.  Order matters: more
#: specific types come first so e.g. "compare ... metrics" does not
#: fall through to evaluation.
_TYPE_KEYWORDS: List[tuple] = [
    ("data_augmentation", ("augment", "synthetic variation", "oversampl")),
    ("data_preprocessing", ("preprocess", "clean", "normalize", "transform the")),
    ("data_loading", ("load", "ingest", "read the", "import the")),
    ("hyperparameter_tuning", ("sweep", "hyperparameter", "grid search")),
    ("model_comparison", ("compare", "ranking", "leaderboard")),
    ("model_deployment", ("deploy", "serving", "rollout", "push the model")),
    ("model_selection", ("select the best", "best-performing", "pick", "choose")),
    ("model_evaluation", ("validate", "evaluate", "evaluation", "metrics")),
    ("model_training", ("train", "fit", "fine-tune", "finetune")),
    ("report_generation", ("report", "summary", "document the")),
]

_SENTENCE_RE = re.compile(r"[^.!?]+[.!?]?")
_DATASET_RE = re.compile(r"\bthe\s+([A-Za-z0-9][A-Za-z0-9_-]*)\s+(?:dataset|data\b)")
_MODELS_RE = re.compile(r"\[([^\]]+)\]")


def split_sentences(description: str) -> List[str]:
    return [s.strip() for s in _SENTENCE_RE.findall(description) if s.strip()]


def classify_sentence(sentence: str) -> Optional[str]:
    """Map one sentence to a predefined task type, or None."""
    lowered = sentence.lower()
    for task_type, keywords in _TYPE_KEYWORDS:
        if any(keyword in lowered for keyword in keywords):
            return task_type
    return None


def extract_dataset(description: str) -> str:
    match = _DATASET_RE.search(description)
    return match.group(1) if match else "dataset"


def extract_models(description: str) -> List[str]:
    """Pull a model list like ``['resnet', 'vit']`` out of the text."""
    match = _MODELS_RE.search(description)
    if not match:
        return ["model-a", "model-b"]
    try:
        parsed = ast.literal_eval(f"[{match.group(1)}]")
        models = [str(item) for item in parsed]
        return models or ["model-a", "model-b"]
    except (ValueError, SyntaxError):
        return [part.strip(" '\"") for part in match.group(1).split(",")]


def decompose_description(description: str) -> List[SubtaskSpec]:
    """Fully mechanical Step 1: sentences -> typed, parameterized modules.

    Variable threading mirrors production conventions: the training
    data variable advances through loading / preprocessing /
    augmentation, and model selection consumes the comparison ranking
    when a comparison module exists, else the raw evaluation results.
    """
    dataset = extract_dataset(description)
    models = extract_models(description)
    sentences = split_sentences(description)

    typed: List[tuple] = []
    seen: set = set()
    for index, sentence in enumerate(sentences):
        # The opening sentence states the objective ("I need to design a
        # workflow to ..."), not a task module; sentences that talk about
        # the workflow itself are likewise goal statements.
        if index == 0 or "workflow" in sentence.lower():
            continue
        task_type = classify_sentence(sentence)
        if task_type is None or task_type in seen:
            continue
        seen.add(task_type)
        typed.append((task_type, sentence))

    has_comparison = any(t == "model_comparison" for t, _ in typed)
    ranking_var = "ranking" if has_comparison else "eval_results"
    data_var = "raw_data"
    modules: List[SubtaskSpec] = []
    for task_type, sentence in typed:
        modules.append(
            SubtaskSpec(
                text=sentence,
                task_type=task_type,
                params={
                    "dataset": dataset,
                    "models": models,
                    "data_var": data_var,
                    "ranking_var": ranking_var,
                },
            )
        )
        if task_type == "data_preprocessing":
            data_var = "clean_data"
        elif task_type == "data_augmentation":
            data_var = "augmented_data"
    return modules
