"""Labeled Counter / Gauge / Histogram registry with a text exporter.

One :class:`MetricsRegistry` is the single source of truth for a
simulation's accounting: the engine's retry/attempt counters, the
scheduler's wait-queue depth, and the artifact store's hit/miss/eviction
numbers all live here (the legacy stat fields delegate to it).  The
:meth:`MetricsRegistry.snapshot` text format follows the Prometheus
exposition style so the numbers read the way an SRE expects.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

LabelKey = Tuple[Tuple[str, str], ...]

#: Default histogram buckets (seconds-flavoured, exponential-ish).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0, 600.0, 3600.0,
)

#: Sub-second buckets for hot-path instrumentation (e.g. cache score
#: computations, which must stay in the microsecond-to-millisecond
#: range for admission decisions to survive production request rates).
HOT_PATH_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0,
)

#: Fraction-of-fleet buckets for tenant share distributions (a tenant's
#: dominant share is a ratio in [0, 1], so second-flavoured buckets
#: would collapse everything into the first bin).
SHARE_BUCKETS: Tuple[float, ...] = (
    0.01, 0.02, 0.05, 0.1, 0.15, 0.25, 0.4, 0.6, 0.8, 1.0,
)


class MetricError(ValueError):
    """Raised on metric misuse (type clash, negative counter delta)."""


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_labels(key: LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(f'{name}="{value}"' for name, value in key)
    return "{" + inner + "}"


class _Metric:
    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help

    def _reset(self) -> None:
        raise NotImplementedError

    def _render(self) -> List[str]:
        raise NotImplementedError

    def _header(self) -> List[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        return lines


class Counter(_Metric):
    """A monotonically increasing value, optionally labeled."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._series: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise MetricError(f"counter {self.name}: negative increment {amount}")
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        return self._series.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over every label combination."""
        return sum(self._series.values())

    def series(self) -> Dict[LabelKey, float]:
        return dict(self._series)

    def _reset(self) -> None:
        self._series.clear()

    def _render(self) -> List[str]:
        lines = self._header()
        for key in sorted(self._series):
            lines.append(f"{self.name}{_render_labels(key)} {self._series[key]:g}")
        return lines


class Gauge(_Metric):
    """A value that goes up and down (occupancy, queue depth)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._series: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        self._series[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        return self._series.get(_label_key(labels), 0.0)

    def series(self) -> Dict[LabelKey, float]:
        return dict(self._series)

    def _reset(self) -> None:
        self._series.clear()

    def _render(self) -> List[str]:
        lines = self._header()
        for key in sorted(self._series):
            lines.append(f"{self.name}{_render_labels(key)} {self._series[key]:g}")
        return lines


class Histogram(_Metric):
    """Bucketed distribution (e.g. span durations)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        if list(buckets) != sorted(buckets):
            raise MetricError(f"histogram {name}: buckets must be sorted")
        self.buckets: Tuple[float, ...] = tuple(buckets)
        self._series: Dict[LabelKey, dict] = {}

    def _state(self, key: LabelKey) -> dict:
        state = self._series.get(key)
        if state is None:
            state = {"counts": [0] * len(self.buckets), "sum": 0.0, "count": 0}
            self._series[key] = state
        return state

    def observe(self, value: float, **labels: object) -> None:
        state = self._state(_label_key(labels))
        state["sum"] += value
        state["count"] += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                state["counts"][index] += 1

    def count(self, **labels: object) -> int:
        state = self._series.get(_label_key(labels))
        return state["count"] if state else 0

    def sum(self, **labels: object) -> float:
        state = self._series.get(_label_key(labels))
        return state["sum"] if state else 0.0

    def _reset(self) -> None:
        self._series.clear()

    def _render(self) -> List[str]:
        lines = self._header()
        for key in sorted(self._series):
            state = self._series[key]
            for bound, cumulative in zip(self.buckets, state["counts"]):
                bucket_key = key + (("le", f"{bound:g}"),)
                lines.append(
                    f"{self.name}_bucket{_render_labels(bucket_key)} {cumulative}"
                )
            inf_key = key + (("le", "+Inf"),)
            lines.append(f"{self.name}_bucket{_render_labels(inf_key)} {state['count']}")
            lines.append(f"{self.name}_sum{_render_labels(key)} {state['sum']:g}")
            lines.append(f"{self.name}_count{_render_labels(key)} {state['count']}")
        return lines


class MetricsRegistry:
    """Get-or-create home for a simulation's metrics.

    Metric objects are cached by name; asking for an existing name with
    a different type raises :class:`MetricError` (silent type morphing
    is how double accounting starts).
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> _Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise MetricError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"requested {cls.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def counters_with_prefix(self, prefix: str) -> Dict[str, float]:
        """Totals of every counter whose name starts with ``prefix``.

        Handy for reporting a subsystem's footprint at a glance, e.g.
        ``counters_with_prefix("chaos_")`` after a fault-injected run.
        """
        return {
            name: metric.total()
            for name, metric in sorted(self._metrics.items())
            if name.startswith(prefix) and isinstance(metric, Counter)
        }

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def reset(self) -> None:
        """Zero every series in place (metric objects stay valid, so
        cached references keep working — used by snapshot restores)."""
        for metric in self._metrics.values():
            metric._reset()

    def snapshot(self) -> str:
        """Text exposition of every metric, Prometheus style."""
        lines: List[str] = []
        for name in self.names():
            lines.extend(self._metrics[name]._render())
        return "\n".join(lines) + ("\n" if lines else "")

    def collect(self) -> dict:
        """Machine-readable dump: ``{name: {"kind", "help", "series"}}``."""
        out: Dict[str, dict] = {}
        for name in self.names():
            metric = self._metrics[name]
            series = {
                _render_labels(key) or "": value
                for key, value in metric._series.items()
            }
            out[name] = {"kind": metric.kind, "help": metric.help, "series": series}
        return out
