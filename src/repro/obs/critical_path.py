"""Critical-path and time-breakdown analysis over recorded spans.

The paper's Fig. 7 caching comparison implicitly argues about *where a
workflow's makespan goes*: with caching on, the fetch share of the
longest dependency chain shrinks and the same compute finishes sooner.
:func:`critical_path` makes that argument explicit: from a workflow's
recorded spans it reconstructs the chain of steps that determined the
finish time and splits the makespan into queue-wait, cache-fetch,
compute, retry-backoff and other (scheduling gaps / idle).

The breakdown is exhaustive by construction: the ``other`` component
absorbs whatever the instrumented phases don't cover, so the breakdown
always sums to the workflow's recorded makespan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .trace import Span, Tracer

#: Phase categories the operator records inside step spans.
PHASE_CATEGORIES = ("queue", "fetch", "compute", "backoff")


class CriticalPathError(ValueError):
    """Raised when the trace lacks the spans the analysis needs."""


@dataclass
class StepBreakdown:
    """Where one critical-path step's wall time went."""

    name: str
    queue: float = 0.0
    fetch: float = 0.0
    compute: float = 0.0
    backoff: float = 0.0
    start: float = 0.0
    end: float = 0.0

    @property
    def accounted(self) -> float:
        return self.queue + self.fetch + self.compute + self.backoff

    @property
    def span_duration(self) -> float:
        return self.end - self.start


@dataclass
class CriticalPathResult:
    """The longest recorded dependency chain and its time breakdown."""

    workflow: str
    makespan: float
    path: List[str]
    #: queue / fetch / compute / backoff / other; sums to ``makespan``.
    breakdown: Dict[str, float]
    per_step: List[StepBreakdown] = field(default_factory=list)

    @property
    def total(self) -> float:
        return sum(self.breakdown.values())

    def report(self) -> str:
        parts = " -> ".join(self.path) or "(empty)"
        lines = [
            f"workflow {self.workflow}: makespan {self.makespan:.1f}s, "
            f"critical path {parts}",
        ]
        for category in (*PHASE_CATEGORIES, "other"):
            seconds = self.breakdown.get(category, 0.0)
            share = seconds / self.makespan if self.makespan else 0.0
            lines.append(f"  {category:>8}: {seconds:10.1f}s  ({share:6.1%})")
        return "\n".join(lines)


def _phase_sums(tracer: Tracer, step_span: Span) -> Dict[str, float]:
    """Sum the durations of phase spans beneath one step span.

    Phase spans are either direct children of the step (queue-wait,
    retry-backoff) or children of its attempt spans (cache-fetch,
    compute); all are disjoint in time, so plain summation is exact.
    """
    sums = {category: 0.0 for category in PHASE_CATEGORIES}
    for child in tracer.children(step_span):
        if child.cat in sums:
            sums[child.cat] += child.duration or 0.0
        elif child.cat == "attempt":
            for grandchild in tracer.children(child):
                if grandchild.cat in sums:
                    sums[grandchild.cat] += grandchild.duration or 0.0
    return sums


def critical_path(tracer: Tracer, workflow: str) -> CriticalPathResult:
    """Compute a workflow's critical path from its recorded spans.

    Walks backwards from the step that finished last, at each hop
    following the dependency that finished latest (the one that gated
    the step's start), then charges each phase category along that
    chain.  Dependencies are read from the ``deps`` arg the operator
    records on every step span.
    """
    wf_span = tracer.find(workflow, cat="workflow")
    if wf_span is None:
        raise CriticalPathError(f"no workflow span named {workflow!r} in trace")
    if wf_span.end is None:
        raise CriticalPathError(f"workflow span {workflow!r} is still open")
    makespan = wf_span.end - wf_span.start

    step_spans: Dict[str, Span] = {
        span.name: span
        for span in tracer.children(wf_span)
        if span.cat == "step"
    }
    if not step_spans:
        return CriticalPathResult(
            workflow=workflow,
            makespan=makespan,
            path=[],
            breakdown={**{c: 0.0 for c in PHASE_CATEGORIES}, "other": makespan},
        )

    def finish(span: Span) -> float:
        return span.end if span.end is not None else span.start

    # Backward walk from the last finisher along latest-finishing deps.
    current: Optional[Span] = max(step_spans.values(), key=finish)
    path_spans: List[Span] = []
    visited = set()
    while current is not None and current.name not in visited:
        visited.add(current.name)
        path_spans.append(current)
        deps = [
            step_spans[name]
            for name in current.args.get("deps", ())
            if name in step_spans
        ]
        current = max(deps, key=finish) if deps else None
    path_spans.reverse()

    per_step: List[StepBreakdown] = []
    breakdown = {category: 0.0 for category in PHASE_CATEGORIES}
    for span in path_spans:
        sums = _phase_sums(tracer, span)
        per_step.append(
            StepBreakdown(
                name=span.name,
                start=span.start,
                end=finish(span),
                **sums,
            )
        )
        for category, seconds in sums.items():
            breakdown[category] += seconds
    breakdown["other"] = makespan - sum(breakdown.values())
    return CriticalPathResult(
        workflow=workflow,
        makespan=makespan,
        path=[span.name for span in path_spans],
        breakdown=breakdown,
        per_step=per_step,
    )
