"""Observability layer: tracing, metrics and span-based analysis.

The paper's entire evaluation (Figs. 5-7, 11-16) is built on *measured*
engine behavior — utilization over time, cache hit ratios, per-step
completion breakdowns.  This package is the measurement substrate the
rest of the system reports through:

- :mod:`repro.obs.trace` — a span/event recorder keyed on the
  simulation's virtual time, with a Chrome ``trace_event`` JSON
  exporter (open the file in ``about:tracing`` or Perfetto).
- :mod:`repro.obs.metrics` — a labeled Counter / Gauge / Histogram
  registry that backs the engine's and cache's accounting, with a
  text snapshot exporter.
- :mod:`repro.obs.critical_path` — per-workflow critical-path and
  time-breakdown analysis (queue / fetch / compute / backoff) computed
  from recorded spans.

The engine depends on this package, never the other way around.
"""

from .critical_path import CriticalPathResult, StepBreakdown, critical_path
from .metrics import (
    SHARE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)
from .trace import NullTracer, Span, Tracer, journal_to_tracer

__all__ = [
    "Counter",
    "CriticalPathResult",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "NullTracer",
    "SHARE_BUCKETS",
    "Span",
    "StepBreakdown",
    "Tracer",
    "critical_path",
    "journal_to_tracer",
]
