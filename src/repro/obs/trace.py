"""Span/event recorder keyed on the simulation's virtual time.

A :class:`Tracer` records nested :class:`Span` objects (workflow ->
step -> {queue-wait, cache-fetch, compute, retry-backoff}) plus instant
events, all timestamped in virtual seconds supplied by the caller (the
operator passes ``clock.now``), so the recorder itself has no clock
dependency.  :meth:`Tracer.to_chrome` exports the Chrome ``trace_event``
JSON format: each root span (a workflow) becomes a process, each of its
child spans (a step) a thread, so a run opens directly in
``about:tracing`` / Perfetto with correct visual nesting.

:class:`NullTracer` is the disabled-tracing stand-in: same API, no
recording, so instrumented code pays only a no-op method call.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class TraceError(ValueError):
    """Raised on tracer misuse (e.g. a span ending before it starts)."""


@dataclass(slots=True)
class Span:
    """One recorded interval of virtual time."""

    span_id: int
    name: str
    cat: str
    start: float
    end: Optional[float] = None
    parent_id: Optional[int] = None
    args: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.start

    def contains(self, other: "Span") -> bool:
        """Is ``other`` fully inside this span's time window?"""
        if self.end is None or other.end is None:
            return False
        return self.start <= other.start and other.end <= self.end


@dataclass(slots=True)
class InstantEvent:
    """A zero-duration marker (e.g. a retry decision)."""

    name: str
    cat: str
    time: float
    parent_id: Optional[int] = None
    args: Dict[str, object] = field(default_factory=dict)


class Tracer:
    """Records spans and instant events; exports Chrome trace JSON."""

    def __init__(self) -> None:
        self._spans: List[Span] = []
        self._events: List[InstantEvent] = []
        self._next_id = 0

    # ------------------------------------------------------------ recording

    def begin(
        self,
        name: str,
        cat: str,
        ts: float,
        parent: Optional[Span] = None,
        **args: object,
    ) -> Span:
        """Open a span at virtual time ``ts``; close it with :meth:`end`."""
        # ``args`` is this call's own kwargs dict — safe to adopt as-is.
        span = Span(
            span_id=self._next_id,
            name=name,
            cat=cat,
            start=ts,
            parent_id=parent.span_id if parent is not None else None,
            args=args,
        )
        self._next_id += 1
        self._spans.append(span)
        return span

    def end(self, span: Optional[Span], ts: float, **args: object) -> None:
        """Close an open span.  Idempotent: a second end is ignored, so
        teardown paths may end defensively."""
        if span is None or span.end is not None:
            return
        if ts < span.start:
            raise TraceError(f"span {span.name!r} ends at {ts} before start {span.start}")
        span.end = ts
        span.args.update(args)

    def add_span(
        self,
        name: str,
        cat: str,
        start: float,
        end: float,
        parent: Optional[Span] = None,
        **args: object,
    ) -> Span:
        """Record a complete span whose extent is already known — the
        natural shape in a discrete-event simulation, where an attempt's
        timeline is decided the moment it is scheduled."""
        if end < start:
            raise TraceError(f"span {name!r}: end {end} precedes start {start}")
        span = Span(
            span_id=self._next_id,
            name=name,
            cat=cat,
            start=start,
            end=end,
            parent_id=parent.span_id if parent is not None else None,
            args=args,
        )
        self._next_id += 1
        self._spans.append(span)
        return span

    def instant(
        self,
        name: str,
        cat: str,
        ts: float,
        parent: Optional[Span] = None,
        **args: object,
    ) -> InstantEvent:
        event = InstantEvent(
            name=name,
            cat=cat,
            time=ts,
            parent_id=parent.span_id if parent is not None else None,
            args=args,
        )
        self._events.append(event)
        return event

    # ------------------------------------------------------------- queries

    def spans(self, cat: Optional[str] = None) -> List[Span]:
        if cat is None:
            return list(self._spans)
        return [s for s in self._spans if s.cat == cat]

    def events(self, cat: Optional[str] = None) -> List[InstantEvent]:
        if cat is None:
            return list(self._events)
        return [e for e in self._events if e.cat == cat]

    def children(self, span: Span) -> List[Span]:
        return [s for s in self._spans if s.parent_id == span.span_id]

    def roots(self) -> List[Span]:
        return [s for s in self._spans if s.parent_id is None]

    def find(self, name: str, cat: Optional[str] = None) -> Optional[Span]:
        for span in self._spans:
            if span.name == name and (cat is None or span.cat == cat):
                return span
        return None

    def __len__(self) -> int:
        return len(self._spans)

    # -------------------------------------------------------------- export

    def to_chrome(self) -> dict:
        """Export the Chrome ``trace_event`` JSON object format.

        Layout: every root span becomes a *process* (pid), every direct
        child of a root becomes a *thread* (tid) of that process, and
        deeper descendants inherit their step's thread.  Concurrent
        steps therefore never overlap on a shared track, and the phase
        sub-spans (fetch / compute / backoff) nest visually inside
        their step's row.  Times are exported in microseconds, as the
        format requires.
        """
        trace_events: List[dict] = []
        pid_of_span: Dict[int, int] = {}
        tid_of_span: Dict[int, int] = {}

        for pid, root in enumerate(self.roots(), start=1):
            trace_events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": f"{root.cat}:{root.name}"},
                }
            )
            pid_of_span[root.span_id] = pid
            tid_of_span[root.span_id] = 0
            next_tid = 1
            stack = [(child, None) for child in self.children(root)]
            while stack:
                span, inherited_tid = stack.pop()
                if inherited_tid is None:
                    tid = next_tid
                    next_tid += 1
                    trace_events.append(
                        {
                            "name": "thread_name",
                            "ph": "M",
                            "pid": pid,
                            "tid": tid,
                            "args": {"name": f"{span.cat}:{span.name}"},
                        }
                    )
                else:
                    tid = inherited_tid
                pid_of_span[span.span_id] = pid
                tid_of_span[span.span_id] = tid
                stack.extend((child, tid) for child in self.children(span))

        for span in self._spans:
            end = span.end if span.end is not None else span.start
            trace_events.append(
                {
                    "name": span.name,
                    "cat": span.cat,
                    "ph": "X",
                    "ts": span.start * 1e6,
                    "dur": (end - span.start) * 1e6,
                    "pid": pid_of_span.get(span.span_id, 0),
                    "tid": tid_of_span.get(span.span_id, 0),
                    "args": dict(span.args),
                }
            )
        for event in self._events:
            trace_events.append(
                {
                    "name": event.name,
                    "cat": event.cat,
                    "ph": "i",
                    "s": "t",
                    "ts": event.time * 1e6,
                    "pid": pid_of_span.get(event.parent_id, 0),
                    "tid": tid_of_span.get(event.parent_id, 0),
                    "args": dict(event.args),
                }
            )
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

    def write_chrome(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome(), handle, indent=1)


def journal_to_tracer(journal, tracer: Optional[Tracer] = None) -> Tracer:
    """Render a journal's event streams as trace spans, post-hoc.

    The journal-backed engine records what happened; this turns that
    record into the same Chrome-viewable shape live tracing produces —
    one span per workflow (``submitted`` → ``workflow-finished``), one
    per settled attempt, instants for everything else (admission
    decisions, checkpoints, attempts lost to a killed replica).  Works
    on any journal-shaped object (``records()`` yielding items with
    ``stream`` / ``kind`` / ``at`` / ``payload``), so it lives here
    without importing the engine.
    """
    tracer = tracer if tracer is not None else Tracer()
    #: stream -> (workflow span, {step: attempt-start record}).
    open_spans: dict = {}
    open_attempts: dict = {}
    last_at: dict = {}
    for record in journal.records():
        stream, kind, at = record.stream, record.kind, record.at
        payload = record.payload
        last_at[stream] = at
        if kind == "submitted":
            open_spans[stream] = tracer.begin(stream, "journal", at)
        elif kind == "workflow-finished":
            tracer.end(open_spans.pop(stream, None), at, phase=payload.get("phase"))
        elif kind == "attempt-started":
            open_attempts[(stream, payload["step"])] = record
        elif kind in ("attempt-succeeded", "attempt-failed", "attempt-interrupted"):
            started = open_attempts.pop((stream, payload["step"]), None)
            tracer.add_span(
                f"{stream}/{payload['step']}",
                "journal-attempt",
                started.at if started is not None else at,
                at,
                parent=open_spans.get(stream),
                outcome=kind.removeprefix("attempt-"),
            )
        else:
            # admission-* decisions, checkpointed, step-skipped/cached/aborted.
            tracer.instant(
                f"{stream}:{kind}",
                "journal",
                at,
                parent=open_spans.get(stream),
                **{k: v for k, v in payload.items() if not isinstance(v, (dict, list))},
            )
    # Streams that never finished (mid-journal prefix): close at last event.
    for stream, span in open_spans.items():
        tracer.end(span, last_at[stream], phase="unfinished")
    for (stream, step), started in open_attempts.items():
        tracer.instant(
            f"{stream}/{step}:attempt-lost", "journal", started.at, step=step
        )
    return tracer


class NullTracer:
    """API-compatible no-op tracer (tracing disabled, near-zero cost)."""

    def begin(self, name, cat, ts, parent=None, **args):  # noqa: D102
        return None

    def end(self, span, ts, **args) -> None:
        return None

    def add_span(self, name, cat, start, end, parent=None, **args):
        return None

    def instant(self, name, cat, ts, parent=None, **args):
        return None

    def spans(self, cat=None):
        return []

    def events(self, cat=None):
        return []

    def roots(self):
        return []

    def __len__(self) -> int:
        return 0
