#!/usr/bin/env python
"""Multi-cluster workflow scheduling (paper Appendix B.A).

Ant Group runs several clusters with different shapes — one GPU-heavy,
others CPU-rich — and a workflow queue that places each workflow by a
weighted combination of priority, cluster free capacity, and the user's
CPU/memory/GPU quotas.  This example enqueues a mixed fleet (GPU
training jobs, CPU batch jobs, a high-priority report) and shows where
everything lands and that the load stays balanced.

Run:  python examples/multi_cluster_dispatch.py
"""

from repro.engine.dispatcher import MultiClusterDispatcher
from repro.engine.queue import UserQuota
from repro.engine.spec import ExecutableStep, ExecutableWorkflow
from repro.k8s.cluster import Cluster
from repro.k8s.resources import ResourceQuantity

GB = 2**30


def workflow(name: str, cpu: float, gpu: int = 0, duration: float = 120.0):
    wf = ExecutableWorkflow(name=name)
    wf.add_step(
        ExecutableStep(
            name="work",
            duration_s=duration,
            requests=ResourceQuantity(cpu=cpu, memory=8 * GB, gpu=gpu),
        )
    )
    return wf


def main() -> None:
    clusters = [
        Cluster.uniform("gpu-cluster", 2, cpu_per_node=32,
                        memory_per_node=128 * GB, gpu_per_node=4),
        Cluster.uniform("cpu-east", 3, cpu_per_node=64, memory_per_node=256 * GB),
        Cluster.uniform("cpu-west", 3, cpu_per_node=64, memory_per_node=256 * GB),
    ]
    quotas = {
        "ml-team": UserQuota(user="ml-team", cpu_limit=200,
                             memory_limit=512 * GB, gpu_limit=8),
        "etl-team": UserQuota(user="etl-team", cpu_limit=300,
                              memory_limit=1024 * GB),
    }
    dispatcher = MultiClusterDispatcher(clusters=clusters, quotas=quotas)

    for index in range(3):
        dispatcher.enqueue(
            workflow(f"train-{index}", cpu=8, gpu=2, duration=600),
            user="ml-team", priority=5,
        )
    for index in range(9):
        dispatcher.enqueue(
            workflow(f"etl-{index}", cpu=16, duration=300), user="etl-team"
        )
    dispatcher.enqueue(
        workflow("exec-report", cpu=4, duration=60), user="etl-team", priority=9
    )

    results = dispatcher.dispatch_all()
    print(f"{'workflow':<14} {'cluster':<12} phase")
    for result in results:
        print(f"{result.workflow_name:<14} {result.cluster_name:<12} "
              f"{result.record.phase.value}")

    print("\nplacements per cluster:", dispatcher.placements())
    print("(the high-priority report was placed first; GPU jobs only on "
          "gpu-cluster; ETL spread across cpu-east/cpu-west)")


if __name__ == "__main__":
    main()
