#!/usr/bin/env python
"""Model search + AutoML (the paper's Appendix A.E / A.F examples).

Part 1 — hyperparameter search for a wide-and-deep model (Code 6):
train five TensorFlow jobs at different batch sizes with ``couler.map``,
then fan out evaluation steps over the resulting models.

Part 2 — AutoML model selection (Code 7): train XGBoost and LightGBM
concurrently over the same telco-churn table and pick the best.

Run:  python examples/model_selection.py
"""

from repro import core as couler
from repro.core.step_zoo import Dataset, lightgbm, tensorflow as tf, xgboost


def run_multiple_jobs(num_jobs: int):
    """Paper Code 6: one training job per batch size."""
    batch_sizes = [100 * (index + 1) for index in range(num_jobs)]
    return couler.map(
        lambda bs: tf.train(
            num_ps=1,
            num_workers=1,
            command="python /train_model.py",
            image="wide-deep-model:v1.0",
            input_batch_size=bs,
        ),
        batch_sizes,
    )


def main() -> None:
    # ---- Part 1: searching the best batch size ---------------------------
    couler.reset_context("model-search")
    model_paths = run_multiple_jobs(5)
    couler.map(lambda model: tf.evaluate(model), model_paths)
    record = couler.run(submitter=couler.ArgoSubmitter())
    print(
        f"[model-search] phase={record.phase.value} "
        f"steps={len(record.steps)} makespan={record.makespan:.0f}s"
    )

    # ---- Part 2: AutoML over two model families (Code 7) -----------------
    couler.reset_context("automl")
    train_data = Dataset(
        table_name="pai_telco_demo_data",
        feature_cols="tenure, age, marital, address, ed, employ",
        label_col="churn",
    )

    def train_xgboost():
        return xgboost.train(
            datasource=train_data,
            model_params={"objective": "binary:logistic"},
            train_params={"num_boost_round": 10, "max_depth": 5},
            image="xgboost-image",
        )

    def train_lgbm():
        estimator = lightgbm.LightGBMEstimator()
        estimator.set_hyperparameters(num_leaves=63, num_iterations=200)
        estimator.model_path = "lightgbm_model"
        return estimator.fit(train_data)

    couler.concurrent([train_xgboost, train_lgbm])
    record = couler.run(submitter=couler.ArgoSubmitter())
    print(f"[automl] phase={record.phase.value} steps={sorted(record.steps)}")


if __name__ == "__main__":
    main()
