#!/usr/bin/env python
"""Big-workflow auto-parallelism (paper Sec. IV.B, Algorithm 3).

Builds a 400+-node production-style ETL workflow, shows that the
Kubernetes API server rejects the monolithic CRD (the 2 MB practical
limit the paper cites), splits it with Algorithm 3, and executes the
parts as a staged plan that honours every cross-part dependency.

Run:  python examples/big_workflow_split.py
"""

from repro.backends import ArgoBackend
from repro.core.submitter import default_environment
from repro.experiments.ablation_split_budget import build_big_workflow
from repro.k8s.apiserver import APIServer, CRDTooLargeError
from repro.k8s.objects import APIObject
from repro.parallelism import BudgetModel, StagedSubmitter, WorkflowSplitter


def main() -> None:
    ir = build_big_workflow(num_layers=12, width=35)
    manifest = ArgoBackend().compile(ir)
    print(f"workflow: {len(ir.nodes)} nodes, {len(ir.edges)} edges")

    crd_limit = 120_000
    api = APIServer(crd_size_limit=crd_limit)
    try:
        api.create(APIObject.from_dict(manifest))
        print("unexpected: monolithic CRD accepted")
    except CRDTooLargeError as exc:
        print(f"monolithic submission rejected, as in production:\n  {exc}")

    budget = BudgetModel(max_yaml_bytes=crd_limit, max_steps=100)
    plan = WorkflowSplitter(budget).split(ir)
    print(f"\nAlgorithm 3 split the workflow into {plan.num_parts} parts:")
    for index, (part, cost) in enumerate(zip(plan.parts, plan.costs)):
        deps = plan.part_dependencies(index)
        print(
            f"  part {index}: {cost.steps} steps, {cost.yaml_bytes} B YAML, "
            f"depends on parts {deps or 'none'}"
        )

    operator = default_environment(num_nodes=24, cpu_per_node=32)
    result = StagedSubmitter(operator).execute(plan)
    print(
        f"\nstaged execution: succeeded={result.succeeded} "
        f"makespan={result.makespan:.0f}s "
        f"(every part cleared the {crd_limit} B CRD limit)"
    )


if __name__ == "__main__":
    main()
