#!/usr/bin/env python
"""GUI canvas -> Couler server -> monitored execution (paper Appendix B).

Recreates the paper's Fig. 9 churn-prediction canvas (data split, three
model-zoo models, evaluation, selection), submits the translated IR
through the Couler *server* — which persists metadata, would split an
oversized workflow, and feeds the SRE monitor — and finally demonstrates
the restart-from-failure flow on a deliberately flaky workflow.

Run:  python examples/gui_and_server.py
"""

from repro.engine.operator import WorkflowOperator
from repro.engine.retry import FailureInjector, RetryPolicy
from repro.engine.simclock import SimClock
from repro.engine.status import WorkflowPhase
from repro.gui import churn_prediction_canvas
from repro.ir.graph import WorkflowIR
from repro.ir.nodes import IRNode, OpKind, SimHint
from repro.k8s.cluster import Cluster
from repro.server import CoulerService

GB = 2**30


def make_service() -> CoulerService:
    clock = SimClock()
    cluster = Cluster.uniform(
        "prod", 8, cpu_per_node=16, memory_per_node=64 * GB, gpu_per_node=2
    )
    operator = WorkflowOperator(
        clock,
        cluster,
        retry_policy=RetryPolicy(limit=0),
        failure_injector=FailureInjector(seed=0, retryable_fraction=0.0),
    )
    return CoulerService(operator=operator)


def flaky_workflow() -> WorkflowIR:
    ir = WorkflowIR(name="nightly-etl")
    ir.add_node(IRNode(name="extract", op=OpKind.CONTAINER, image="etl:v1",
                       sim=SimHint(duration_s=60)))
    ir.add_node(IRNode(name="transform", op=OpKind.CONTAINER, image="etl:v1",
                       sim=SimHint(duration_s=60, failure_rate=1.0)))
    ir.add_node(IRNode(name="load", op=OpKind.CONTAINER, image="etl:v1",
                       sim=SimHint(duration_s=60)))
    ir.add_edge("extract", "transform")
    ir.add_edge("transform", "load")
    return ir


def main() -> None:
    service = make_service()

    # ---- 1. The GUI path: canvas -> IR -> server -------------------------
    canvas = churn_prediction_canvas()
    ir = canvas.to_ir()
    print(f"canvas translated to IR: {len(ir.nodes)} steps, {len(ir.edges)} wires")
    handle = service.submit(ir, owner="data-scientist")
    print(f"[churn-prediction] phase={handle.record.phase.value} "
          f"(split into {handle.split_parts} part(s))")

    # ---- 2. Failure + the manual retry flow ------------------------------
    handle = service.submit(flaky_workflow(), owner="sre")
    print(f"[nightly-etl] first run: phase={handle.record.phase.value} "
          f"(step 'transform' crashed)")

    # The engineer fixes the transform step, then retries from failure:
    service._irs["nightly-etl"].nodes["transform"].sim = SimHint(duration_s=60)
    record = service.retry_from_failure("nightly-etl")
    skipped = record.steps["extract"]
    print(f"[nightly-etl] retried: phase={record.phase.value} "
          f"('extract' was skipped — finish time unchanged at "
          f"{skipped.finish_time:.0f}s)")

    # ---- 3. What the SRE sees --------------------------------------------
    health = service.health()
    print("\nserver health report:")
    for key in ("status_counts", "failure_rate", "retry_rate", "database_counts"):
        print(f"  {key}: {health[key]}")
    print(f"  alerts: {health['alerts'] or 'none'}")


if __name__ == "__main__":
    main()
