#!/usr/bin/env python
"""Natural language -> executable Couler workflow (paper Sec. III).

Runs Algorithm 1 end to end on the paper's running example ("select the
optimal image classification model among ResNet, ViT and DenseNet"):
modular decomposition, per-module code generation with Code Lake
retrieval, self-calibration, user-feedback repair — then executes the
generated workflow on the simulated cluster and prints the LLM bill.

Run:  python examples/nl_to_workflow.py
"""

from repro.core.submitter import default_environment
from repro.llm.simulated import GPT4_PROFILE, SimulatedLLM
from repro.nl2wf.corpus import build_corpus
from repro.nl2wf.pipeline import NLToWorkflow


def main() -> None:
    tasks = build_corpus()
    # The image-classification model-selection scenario from the paper.
    task = next(t for t in tasks if t.name.startswith("image-classify"))
    print("Natural language description:")
    print(" ", task.description[:240], "...\n")

    llm = SimulatedLLM(GPT4_PROFILE, seed=11)
    pipeline = NLToWorkflow(llm, baseline_score=0.7)
    result = pipeline.convert(task, user_feedback_rounds=3)

    print(f"conversion passed: {result.passed}"
          f" (feedback rounds used: {result.feedback_rounds})")
    print("\ngenerated Couler code (first module):")
    print(result.modules[0].code if result.modules else "<none>")

    if result.passed:
        operator = default_environment(num_nodes=8, cpu_per_node=32)
        record = operator.submit(result.ir.to_executable())
        operator.run_to_completion()
        print(f"executed on simulated cluster: phase={record.phase.value} "
              f"steps={len(record.steps)}")

    meter = llm.meter
    print(
        f"\nLLM usage: {meter.total_tokens} tokens over {meter.calls} calls "
        f"-> ${meter.cost_usd:.3f} ({meter.model})"
    )


if __name__ == "__main__":
    main()
