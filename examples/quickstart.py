#!/usr/bin/env python
"""Quickstart: define, compile and run your first Couler workflow.

Reproduces the paper's introductory listings:

1. the diamond DAG defined explicitly (Code 1 / Code 4),
2. a producer/consumer pair passing an artifact (Code 2),
3. the coin-flip conditional (Code 3),

then compiles the workflow to an Argo manifest and executes it on the
simulated cluster.

Run:  python examples/quickstart.py
"""

from repro import core as couler
from repro.backends import ArgoBackend


def job(name: str) -> None:
    couler.run_container(
        image="docker/whalesay:latest",
        command=["cowsay"],
        args=[name],
        step_name=name,
    )


def diamond() -> None:
    """The paper's Code 1: A -> {B, C} -> D."""
    couler.dag(
        [
            [lambda: job("A")],
            [lambda: job("A"), lambda: job("B")],  # A -> B
            [lambda: job("A"), lambda: job("C")],  # A -> C
            [lambda: job("B"), lambda: job("D")],  # B -> D
            [lambda: job("C"), lambda: job("D")],  # C -> D
        ]
    )


def random_code() -> None:
    import random

    res = "heads" if random.randint(0, 1) == 0 else "tails"
    print(res)


def main() -> None:
    # ---- 1. Explicit DAG -------------------------------------------------
    couler.reset_context("diamond")
    diamond()
    record = couler.run(submitter=couler.ArgoSubmitter())
    print(f"[diamond] phase={record.phase.value} makespan={record.makespan:.0f}s")

    # ---- 2. Producer / consumer (paper Code 2) ---------------------------
    couler.reset_context("producer-consumer")
    output_place = couler.create_parameter_artifact(
        path="/opt/hello_world.txt", is_global=True
    )
    producer = couler.run_container(
        image="docker/whalesay:latest",
        args=["echo -n hello world > %s" % output_place.path],
        command=["bash", "-c"],
        output=output_place,
        step_name="step1",
    )
    couler.run_container(
        image="docker/whalesay:latest",
        command=["cowsay"],
        step_name="step2",
        input=producer,
    )
    record = couler.run(submitter=couler.ArgoSubmitter())
    print(f"[producer-consumer] phase={record.phase.value}")

    # ---- 3. Conditional coin flip (paper Code 3) -------------------------
    from repro.ir.nodes import SimHint

    couler.reset_context("coin-flip")
    result = couler.run_script(
        image="python:alpine3.6",
        source=random_code,
        step_name="flip-coin",
        # Declare the possible results: the simulated engine draws one
        # and only the matching branch runs (the other is Skipped).
        sim=SimHint(duration_s=5, result_options=("heads", "tails")),
    )
    couler.when(
        couler.equal(result, "heads"),
        lambda: couler.run_container(
            image="alpine:3.6",
            command=["sh", "-c", 'echo "it was heads"'],
            step_name="heads",
        ),
    )
    couler.when(
        couler.equal(result, "tails"),
        lambda: couler.run_container(
            image="alpine:3.6",
            command=["sh", "-c", 'echo "it was tails"'],
            step_name="tails",
        ),
    )
    ir = couler.workflow_ir()
    print("[coin-flip] generated Argo YAML (excerpt):")
    print(ArgoBackend().compile_to_text(ir)[:500], "...")
    record = couler.run(submitter=couler.ArgoSubmitter())
    taken = [
        name
        for name in ("heads", "tails")
        if record.steps[name].status.value == "Succeeded"
    ]
    skipped = [
        name
        for name in ("heads", "tails")
        if record.steps[name].status.value == "Skipped"
    ]
    print(f"[coin-flip] phase={record.phase.value}: branch {taken} ran, "
          f"branch {skipped} was skipped")


if __name__ == "__main__":
    main()
