#!/usr/bin/env python
"""Automatic caching + automatic hyperparameter tuning (paper Sec. IV).

Part 1 runs the multimodal training scenario (37 pods, 19 models) for
three development iterations under three caching strategies and prints
the Fig. 7-style comparison: Couler's importance-factor cache finishes
close to cache-everything at a fraction of the storage.

Part 2 runs Algorithm 4 on the ViT-style image task: candidate
hyperparameters are scored from *predicted training logs* and the chosen
configuration is compared against the expert and literature baselines.

Run:  python examples/caching_and_autotune.py
"""

from repro.autotune import (
    AutoTuner,
    TrainingSurrogate,
    VIT_CIFAR_DATA,
    VIT_MODEL,
    default_candidate_grid,
    expert_baseline,
    literature_baseline,
    make_llm_log_predictor,
)
from repro.experiments.caching_runner import run_scenario


def caching_demo() -> None:
    print("== automatic artifact caching (multimodal scenario) ==")
    for policy, cache_gb in (("no", 0), ("all", None), ("couler", 30.0)):
        result = run_scenario("multimodal", policy, cache_gb=cache_gb, iterations=3)
        cache = (
            f"{result.peak_cache_gb:6.1f} GB peak cache"
            if policy != "no"
            else "   no caching     "
        )
        print(
            f"  {policy:>6}: {result.total_time_s:6.0f}s total, "
            f"hit ratio {result.hit_ratio:5.1%}, {cache}"
        )


def autotune_demo() -> None:
    print("\n== automatic hyperparameter tuning (Algorithm 4, CV task) ==")
    surrogate = TrainingSurrogate(VIT_CIFAR_DATA, VIT_MODEL, seed=3)
    tuner = AutoTuner(make_llm_log_predictor(surrogate, fidelity=0.85, seed=4))
    result = tuner.tune(
        VIT_CIFAR_DATA, VIT_MODEL, default_candidate_grid(VIT_MODEL)
    )
    print(f"  chosen by predicted logs: {result.best.render()}")
    configs = {
        "HP:Ours": result.best,
        "HP-baseline1 (expert)": expert_baseline(VIT_MODEL),
        "HP-baseline2 (literature)": literature_baseline(VIT_MODEL),
    }
    for label, hp in configs.items():
        curve = surrogate.train(hp)
        print(
            f"  {label:<26} final loss={curve.final_loss:.3f} "
            f"accuracy={curve.final_accuracy:.3f}"
        )


def main() -> None:
    caching_demo()
    autotune_demo()


if __name__ == "__main__":
    main()
