#!/usr/bin/env python
"""SQLFlow frontend: train and predict with SQL (paper Appendix B.E).

Couler is SQLFlow's default backend: a ``SELECT ... TO TRAIN`` statement
compiles into a Couler workflow (extract -> train -> save model) and a
``TO PREDICT`` statement into extract -> predict -> write.  This example
runs the paper's exact Iris statements through the translator and
executes both workflows on the simulated cluster.

Run:  python examples/sqlflow_pipeline.py
"""

from repro.core.submitter import default_environment
from repro.sqlflow import sql_to_ir

TRAIN_SQL = """
SELECT *
FROM iris.train
TO TRAIN DNNClassifier
WITH model.n_classes = 3, model.hidden_units = [10]
COLUMN sepal_len, sepal_width, petal_length
LABEL class
INTO sqlflow_models.my_dnn_model;
"""

PREDICT_SQL = """
SELECT *
FROM iris.test
TO PREDICT iris.predict.class
USING sqlflow_models.my_dnn_model;
"""


def main() -> None:
    operator = default_environment()
    for label, sql in (("train", TRAIN_SQL), ("predict", PREDICT_SQL)):
        ir = sql_to_ir(sql)
        print(f"[{label}] workflow steps: {ir.topological_order()}")
        record = operator.submit(ir.to_executable())
        operator.run_to_completion()
        print(f"[{label}] phase={record.phase.value} makespan={record.makespan:.0f}s")


if __name__ == "__main__":
    main()
