"""Fig. 8 bench: automatic hyperparameter configuration (CV + NLP)."""

from bench_utils import run_once

from repro.experiments import fig8_autotune


def test_fig8_autotune(benchmark, save_report):
    results = run_once(benchmark, fig8_autotune.run)
    save_report("fig8_autotune", fig8_autotune.report(results))
    for domain, payload in results.items():
        final = payload["final"]
        ours = final["HP:Ours"]
        # Shape: HP:Ours achieves the lowest loss and the best accuracy
        # among the three configurations (paper Fig. 8).
        for baseline in ("HP-baseline1", "HP-baseline2"):
            assert ours["loss"] <= final[baseline]["loss"], (domain, baseline)
            assert ours["accuracy"] >= final[baseline]["accuracy"], (domain, baseline)
