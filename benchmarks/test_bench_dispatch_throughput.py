"""Dispatch-throughput benchmark for the event-driven admission pipeline.

Drives an open-loop Poisson fleet (default 500 workflows, override with
``BENCH_DISPATCH_WORKFLOWS`` for CI smoke runs) from four tenants across
a three-cluster fleet, once per fairness configuration:

* ``strict-priority`` — the legacy scheduler: static per-tenant quota
  caps, aged-priority ordering.  This is the seed behaviour and the
  starvation baseline (the batch tenant's worst wait was ~1957 s).
* ``weighted-fair`` (primary) — static caps replaced by work-conserving
  weighted shares (quota ratios become fairness weights), CPU filler
  kept off the GPU cluster (``protect_gpu``).
* ``drf`` — the same, ordered by dominant-resource share.
* ``drf+slo+preempt`` — DRF plus the serving tenant in the ``serving``
  SLO lane with checkpoint preemption enabled.

Reported per configuration: p50/p99 queue latency, per-tenant p99 and
starvation-gap columns (pending-inclusive), scheduler event counts and
preemptions.  The primary configuration is replayed under the same seed
and must match exactly, and the result lands in
``benchmarks/results/BENCH_dispatch.json``.

A committed baseline file (``BENCH_dispatch_baselines.json``) gates the
primary p99 and starvation gap ratchet-style: a run that regresses
against the baseline fails, mirroring the determinism-digest gates.
"""

from __future__ import annotations

import json
import os
import random
import time

from bench_utils import run_once

from repro.engine.admission import AdmissionPipeline
from repro.engine.fairness import SLO_BATCH, SLO_SERVING
from repro.engine.queue import UserQuota
from repro.engine.spec import ExecutableStep, ExecutableWorkflow
from repro.engine.status import WorkflowPhase
from repro.k8s.cluster import Cluster
from repro.k8s.resources import ResourceQuantity
from repro.workloads.arrivals import PoissonArrivalProcess

GB = 2**30

NUM_WORKFLOWS = int(os.environ.get("BENCH_DISPATCH_WORKFLOWS", "500"))
SEED = 2024
#: Mean arrival gap of 8 virtual seconds keeps the fleet contended
#: (several workflows in flight per cluster) without unbounded backlog.
ARRIVAL_RATE_PER_S = 0.125

#: (name, priority, cpu quota) — tenant "batch" is the starvation test
#: case: lowest priority, must still be served within the gap bound.
TENANTS = [
    ("research", 8, 96.0),
    ("serving", 6, 96.0),
    ("etl", 3, 64.0),
    ("batch", 1, 48.0),
]

#: The acceptance bound on the primary config's batch-tenant gap at the
#: full 500-workflow load: >=10x below the strict-priority seed's 1957 s.
BATCH_GAP_BOUND_S = 196.0


def _clusters():
    return [
        Cluster.uniform("gpu", 2, cpu_per_node=32.0, memory_per_node=128 * GB, gpu_per_node=4),
        Cluster.uniform("cpu-a", 4, cpu_per_node=32.0, memory_per_node=128 * GB),
        Cluster.uniform("cpu-b", 4, cpu_per_node=32.0, memory_per_node=128 * GB),
    ]


def _fleet(count: int, seed: int):
    """Seeded two-step pipelines: mixed sizes, ~10% GPU work."""
    rng = random.Random(seed)
    fleet = []
    for index in range(count):
        tenant, priority, _ = TENANTS[index % len(TENANTS)]
        gpu = 1 if rng.random() < 0.1 else 0
        cpu = rng.choice([2.0, 4.0, 8.0, 16.0])
        workflow = ExecutableWorkflow(name=f"wf-{index}")
        workflow.add_step(
            ExecutableStep(
                name="prep",
                duration_s=20 + rng.random() * 40,
                requests=ResourceQuantity(cpu=cpu / 2, memory=2 * GB),
            )
        )
        workflow.add_step(
            ExecutableStep(
                name="main",
                duration_s=60 + rng.random() * 120,
                requests=ResourceQuantity(cpu=cpu, memory=4 * GB, gpu=gpu),
                dependencies=["prep"],
            )
        )
        fleet.append((workflow, tenant, priority))
    return fleet


def _percentile(values, q):
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


#: name -> (fairness policy, share-based entitlement, slo lanes, preemption)
CONFIGS = {
    "strict-priority": ("strict-priority", False, False, False),
    "weighted-fair": ("weighted-fair", True, False, False),
    "drf": ("drf", True, False, False),
    "drf+slo+preempt": ("drf", True, True, True),
}
PRIMARY = "weighted-fair"


def _run(seed: int, config: str) -> dict:
    fairness, share_based, slo, preemption = CONFIGS[config]
    if share_based:
        # Work-conserving entitlement: the static cpu caps become
        # fairness *weights* and quotas open to the full fleet, so an
        # under-share tenant is ordered first instead of hard-blocked
        # while clusters sit idle (the DRF argument against caps).
        quotas = {
            name: UserQuota(
                user=name, cpu_limit=320.0, memory_limit=2048 * GB, gpu_limit=16
            )
            for name, _, _ in TENANTS
        }
        weights = {name: limit / 48.0 for name, _, limit in TENANTS}
    else:
        quotas = {
            name: UserQuota(
                user=name, cpu_limit=limit, memory_limit=512 * GB, gpu_limit=8
            )
            for name, _, limit in TENANTS
        }
        weights = None
    pipeline = AdmissionPipeline(
        _clusters(),
        quotas=quotas,
        seed=seed,
        aging_rate=0.02,
        max_pending=4 * NUM_WORKFLOWS,
        fairness=fairness,
        tenant_weights=weights,
        preemption=preemption,
        protect_gpu=share_based,
    )
    arrivals = PoissonArrivalProcess(rate_per_s=ARRIVAL_RATE_PER_S, seed=seed).times(
        NUM_WORKFLOWS
    )
    fleet = _fleet(NUM_WORKFLOWS, seed)
    for at, (workflow, tenant, priority) in zip(arrivals, fleet):
        lane = SLO_SERVING if (slo and tenant == "serving") else SLO_BATCH
        pipeline.submit_at(at, workflow, user=tenant, priority=priority, slo_class=lane)
    makespan = pipeline.run()

    latencies = pipeline.queue_latencies()
    completed = sum(
        1
        for record in pipeline.completed_records()
        if record.phase == WorkflowPhase.SUCCEEDED
    )
    events = {
        dict(labels)["event"]: value
        for labels, value in pipeline.metrics.counter(
            "admission_events_total"
        ).series().items()
    }
    per_tenant = pipeline.tenant_queue_latencies()
    return {
        "config": config,
        "workflows": NUM_WORKFLOWS,
        "seed": seed,
        "completed": completed,
        "rejected": len(pipeline.rejected()),
        "makespan_s": makespan,
        "workflows_per_sec": completed / makespan if makespan else 0.0,
        "queue_latency_p50_s": _percentile(latencies, 0.50),
        "queue_latency_p99_s": _percentile(latencies, 0.99),
        "queue_latency_p99_by_tenant_s": {
            tenant: _percentile(per_tenant.get(tenant, []), 0.99)
            for tenant, _, _ in TENANTS
        },
        "starvation_gap_s": pipeline.starvation_gap(),
        "starvation_gap_by_tenant_s": {
            tenant: pipeline.tenant_starvation_gaps().get(tenant, 0.0)
            for tenant, _, _ in TENANTS
        },
        "preemptions": int(events.get("preemption", 0)),
        "scheduler_events": {name: int(value) for name, value in sorted(events.items())},
    }


def _run_all(seed: int) -> dict:
    """Primary payload (top-level keys) plus the policy comparison."""
    policies = {config: _run(seed, config) for config in CONFIGS}
    payload = dict(policies[PRIMARY])
    payload["policies"] = policies
    return payload


def _check_ratchet(payload: dict, results_dir) -> str:
    """Gate the primary config against the committed baselines.

    Ratchet semantics (same spirit as the determinism digests): a run
    may do *better* than the committed numbers, never meaningfully
    worse.  Missing baseline entries (new workflow counts) are noted,
    not failed.
    """
    baselines_path = results_dir / "BENCH_dispatch_baselines.json"
    if not baselines_path.exists():
        return "no baselines file; ratchet gate skipped"
    baselines = json.loads(baselines_path.read_text(encoding="utf-8"))
    entry = baselines.get(str(NUM_WORKFLOWS))
    if entry is None:
        return f"no baseline for {NUM_WORKFLOWS} workflows; ratchet gate skipped"
    # Virtual-time metrics are deterministic, so the tolerance only
    # absorbs representation noise, not real regressions.
    for key in ("queue_latency_p99_s", "starvation_gap_s"):
        bound = entry[key] * 1.001 + 0.5
        assert payload[key] <= bound, (
            f"ratchet regression on {key}: {payload[key]:.2f}s exceeds "
            f"baseline {entry[key]:.2f}s (+tolerance {bound:.2f}s); if the "
            f"regression is intended, update BENCH_dispatch_baselines.json"
        )
    batch_gap = payload["starvation_gap_by_tenant_s"]["batch"]
    batch_bound = entry["batch_starvation_gap_s"] * 1.001 + 0.5
    assert batch_gap <= batch_bound, (
        f"ratchet regression on batch-tenant starvation gap: "
        f"{batch_gap:.2f}s exceeds baseline "
        f"{entry['batch_starvation_gap_s']:.2f}s (+tolerance {batch_bound:.2f}s)"
    )
    return (
        f"ratchet gate vs baseline({NUM_WORKFLOWS}): "
        f"p99 {payload['queue_latency_p99_s']:.1f}s <= {entry['queue_latency_p99_s']:.1f}s, "
        f"batch gap {batch_gap:.1f}s <= {entry['batch_starvation_gap_s']:.1f}s"
    )


def test_dispatch_throughput(benchmark, results_dir, save_report):
    started = time.perf_counter()
    payload = run_once(benchmark, _run_all, SEED)
    wall_s = time.perf_counter() - started
    replay = _run_all(SEED)

    # Determinism is an acceptance criterion: every compared field is
    # virtual-time-derived, so a same-seed replay must match exactly.
    assert payload == replay, "same-seed dispatch runs diverged"

    for config, result in payload["policies"].items():
        assert result["completed"] + result["rejected"] == NUM_WORKFLOWS, config
        assert result["completed"] >= 0.95 * NUM_WORKFLOWS, config
        assert result["workflows_per_sec"] > 0, config
        assert result["queue_latency_p50_s"] <= result["queue_latency_p99_s"], config
        assert (
            result["queue_latency_p99_s"] <= result["starvation_gap_s"] + 1e-9
        ), config
        events = result["scheduler_events"]
        # Preempted workflows place once per eviction plus the final run.
        assert events["placement"] == result["completed"] + result["preemptions"], config
        assert events["completion"] == result["completed"], config
        assert events["arrival"] == NUM_WORKFLOWS, config

    strict = payload["policies"]["strict-priority"]
    primary = payload["policies"][PRIMARY]
    assert primary["starvation_gap_by_tenant_s"]["batch"] <= (
        strict["starvation_gap_by_tenant_s"]["batch"]
    ), "fair scheduling must not worsen the batch tenant's worst wait"
    if NUM_WORKFLOWS >= 500:
        # The tentpole acceptance bound: >=10x below the seed's 1957 s.
        assert primary["starvation_gap_by_tenant_s"]["batch"] <= BATCH_GAP_BOUND_S
    preempting = payload["policies"]["drf+slo+preempt"]
    if NUM_WORKFLOWS >= 500:
        assert preempting["preemptions"] > 0, "preemption config never preempted"

    ratchet_note = _check_ratchet(payload, results_dir)

    out = results_dir / "BENCH_dispatch.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    lines = [
        "dispatch throughput benchmark (event-driven admission pipeline)",
        f"  primary config: {PRIMARY} · {payload['completed']}/{NUM_WORKFLOWS} "
        f"completed, {payload['rejected']} shed",
        f"  virtual makespan: {payload['makespan_s']:.0f}s  "
        f"throughput: {payload['workflows_per_sec']:.3f} wf/s (virtual)",
        "  config               p50      p99      batch-gap  preempts",
    ]
    for config, result in payload["policies"].items():
        lines.append(
            f"  {config:<20} {result['queue_latency_p50_s']:>7.1f}s "
            f"{result['queue_latency_p99_s']:>7.1f}s "
            f"{result['starvation_gap_by_tenant_s']['batch']:>9.1f}s "
            f"{result['preemptions']:>8d}"
        )
    lines.append(f"  {ratchet_note}")
    lines.append(
        f"  harness wall time: {wall_s:.2f}s (not part of the compared payload)"
    )
    lines.append(f"  [payload saved to {out}]")
    save_report("bench_dispatch_throughput", "\n".join(lines))
