"""Dispatch-throughput benchmark for the event-driven admission pipeline.

Drives an open-loop Poisson fleet (default 500 workflows, override with
``BENCH_DISPATCH_WORKFLOWS`` for CI smoke runs) from four tenants with
uneven quotas and priorities across a three-cluster fleet, and records
the service-level quantities the online scheduler exists for:

* **throughput** — completed workflows per virtual second, against the
  virtual makespan (wall time is reported for context but excluded
  from the compared payload, keeping the benchmark deterministic);
* **queue latency** — p50/p99 arrival-to-placement wait;
* **scheduler events** — arrivals, admissions, passes, deferrals,
  placements, completions, rejections from the metrics registry;
* **starvation gap** — the single worst queue wait (priority aging is
  on, so this stays bounded even for the low-priority tenant).

The same seeded run executes twice; the payloads must be identical, and
the result lands in ``benchmarks/results/BENCH_dispatch.json``.
"""

from __future__ import annotations

import json
import os
import random
import time

from bench_utils import run_once

from repro.engine.admission import AdmissionPipeline
from repro.engine.queue import UserQuota
from repro.engine.spec import ExecutableStep, ExecutableWorkflow
from repro.engine.status import WorkflowPhase
from repro.k8s.cluster import Cluster
from repro.k8s.resources import ResourceQuantity
from repro.workloads.arrivals import PoissonArrivalProcess

GB = 2**30

NUM_WORKFLOWS = int(os.environ.get("BENCH_DISPATCH_WORKFLOWS", "500"))
SEED = 2024
#: Mean arrival gap of 8 virtual seconds keeps the fleet contended
#: (several workflows in flight per cluster) without unbounded backlog.
ARRIVAL_RATE_PER_S = 0.125

#: (name, priority, cpu quota) — tenant "batch" is the aging test case:
#: lowest priority, must still be served within the starvation bound.
TENANTS = [
    ("research", 8, 96.0),
    ("serving", 6, 96.0),
    ("etl", 3, 64.0),
    ("batch", 1, 48.0),
]


def _clusters():
    return [
        Cluster.uniform("gpu", 2, cpu_per_node=32.0, memory_per_node=128 * GB, gpu_per_node=4),
        Cluster.uniform("cpu-a", 4, cpu_per_node=32.0, memory_per_node=128 * GB),
        Cluster.uniform("cpu-b", 4, cpu_per_node=32.0, memory_per_node=128 * GB),
    ]


def _fleet(count: int, seed: int):
    """Seeded two-step pipelines: mixed sizes, ~10% GPU work."""
    rng = random.Random(seed)
    fleet = []
    for index in range(count):
        tenant, priority, _ = TENANTS[index % len(TENANTS)]
        gpu = 1 if rng.random() < 0.1 else 0
        cpu = rng.choice([2.0, 4.0, 8.0, 16.0])
        workflow = ExecutableWorkflow(name=f"wf-{index}")
        workflow.add_step(
            ExecutableStep(
                name="prep",
                duration_s=20 + rng.random() * 40,
                requests=ResourceQuantity(cpu=cpu / 2, memory=2 * GB),
            )
        )
        workflow.add_step(
            ExecutableStep(
                name="main",
                duration_s=60 + rng.random() * 120,
                requests=ResourceQuantity(cpu=cpu, memory=4 * GB, gpu=gpu),
                dependencies=["prep"],
            )
        )
        fleet.append((workflow, tenant, priority))
    return fleet


def _percentile(values, q):
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def _run(seed: int) -> dict:
    quotas = {
        name: UserQuota(user=name, cpu_limit=limit, memory_limit=512 * GB, gpu_limit=8)
        for name, _, limit in TENANTS
    }
    pipeline = AdmissionPipeline(
        _clusters(),
        quotas=quotas,
        seed=seed,
        aging_rate=0.02,
        max_pending=4 * NUM_WORKFLOWS,
    )
    arrivals = PoissonArrivalProcess(rate_per_s=ARRIVAL_RATE_PER_S, seed=seed).times(
        NUM_WORKFLOWS
    )
    fleet = _fleet(NUM_WORKFLOWS, seed)
    for at, (workflow, tenant, priority) in zip(arrivals, fleet):
        pipeline.submit_at(at, workflow, user=tenant, priority=priority)
    makespan = pipeline.run()

    latencies = pipeline.queue_latencies()
    completed = sum(
        1
        for record in pipeline.completed_records()
        if record.phase == WorkflowPhase.SUCCEEDED
    )
    events = {
        dict(labels)["event"]: value
        for labels, value in pipeline.metrics.counter(
            "admission_events_total"
        ).series().items()
    }
    per_tenant_worst = {
        tenant: max(
            (
                a.queue_latency
                for a in pipeline.placed
                if a.user == tenant and a.queue_latency is not None
            ),
            default=0.0,
        )
        for tenant, _, _ in TENANTS
    }
    return {
        "workflows": NUM_WORKFLOWS,
        "seed": seed,
        "completed": completed,
        "rejected": len(pipeline.rejected()),
        "makespan_s": makespan,
        "workflows_per_sec": completed / makespan if makespan else 0.0,
        "queue_latency_p50_s": _percentile(latencies, 0.50),
        "queue_latency_p99_s": _percentile(latencies, 0.99),
        "starvation_gap_s": pipeline.starvation_gap(),
        "starvation_gap_by_tenant_s": per_tenant_worst,
        "scheduler_events": {name: int(value) for name, value in sorted(events.items())},
    }


def test_dispatch_throughput(benchmark, results_dir, save_report):
    started = time.perf_counter()
    payload = run_once(benchmark, _run, SEED)
    wall_s = time.perf_counter() - started
    replay = _run(SEED)

    # Determinism is an acceptance criterion: every compared field is
    # virtual-time-derived, so a same-seed replay must match exactly.
    assert payload == replay, "same-seed dispatch runs diverged"

    assert payload["completed"] + payload["rejected"] == NUM_WORKFLOWS
    assert payload["completed"] >= 0.95 * NUM_WORKFLOWS
    assert payload["workflows_per_sec"] > 0
    assert payload["queue_latency_p50_s"] <= payload["queue_latency_p99_s"]
    assert payload["queue_latency_p99_s"] <= payload["starvation_gap_s"] + 1e-9
    events = payload["scheduler_events"]
    assert events["placement"] == payload["completed"]
    assert events["completion"] == payload["completed"]
    assert events["arrival"] == NUM_WORKFLOWS
    # Aging keeps the low-priority tenant's worst wait within an order
    # of magnitude of the fleet-wide p99 (no unbounded starvation).
    assert payload["starvation_gap_by_tenant_s"]["batch"] <= max(
        10 * payload["queue_latency_p99_s"], 600.0
    )

    out = results_dir / "BENCH_dispatch.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    save_report(
        "bench_dispatch_throughput",
        "dispatch throughput benchmark (event-driven admission pipeline)\n"
        f"  workflows: {payload['completed']}/{NUM_WORKFLOWS} completed, "
        f"{payload['rejected']} shed\n"
        f"  virtual makespan: {payload['makespan_s']:.0f}s  "
        f"throughput: {payload['workflows_per_sec']:.3f} wf/s (virtual)\n"
        f"  queue latency p50/p99: {payload['queue_latency_p50_s']:.1f}s / "
        f"{payload['queue_latency_p99_s']:.1f}s  "
        f"starvation gap: {payload['starvation_gap_s']:.1f}s\n"
        f"  scheduler events: {payload['scheduler_events']}\n"
        f"  harness wall time: {wall_s:.2f}s (not part of the compared payload)\n"
        f"  [payload saved to {out}]",
    )
