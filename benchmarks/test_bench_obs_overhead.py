"""Tracing-overhead micro-benchmark.

The obs layer is always-on-capable only if instrumentation is close to
free: a traced simulation must stay within ~10% of an untraced one.
The benchmark runs the paper's image-segmentation scenario (the
representative workload: real cache scoring, contention, retries) with
a :class:`NullTracer` + private registry (the default) and with a live
:class:`Tracer` + shared registry, comparing min-of-N wall times (min
is the standard noise-robust estimator for micro-benchmarks).
"""

from __future__ import annotations

import time

from repro.engine.operator import WorkflowOperator
from repro.engine.retry import FailureInjector, RetryPolicy
from repro.engine.simclock import SimClock
from repro.engine.spec import ArtifactSpec, ExecutableStep, ExecutableWorkflow
from repro.experiments.caching_runner import run_scenario
from repro.k8s.cluster import Cluster
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

GB = 2**30

#: Allowed traced/untraced ratio.  The acceptance bar is ~1.10; the
#: small absolute slack keeps sub-millisecond jitter from failing runs
#: on a loaded CI box.
MAX_RATIO = 1.10
ABS_SLACK_S = 0.02


def _build_workflow(index: int) -> ExecutableWorkflow:
    wf = ExecutableWorkflow(name=f"bench-wf-{index}")
    previous = None
    for layer in range(24):
        name = f"l{layer}"
        wf.add_step(
            ExecutableStep(
                name=name,
                duration_s=10,
                dependencies=[previous] if previous else [],
                inputs=[
                    ArtifactSpec(uid=f"wf{index}/{layer}/in", size_bytes=1 * GB)
                ],
                outputs=[
                    ArtifactSpec(uid=f"wf{index}/{layer}/out", size_bytes=1 * GB)
                ],
            )
        )
        previous = name
    return wf


def _simulate(tracer=None, metrics=None) -> float:
    clock = SimClock()
    cluster = Cluster.uniform(
        "bench", 4, cpu_per_node=16.0, memory_per_node=64 * GB
    )
    operator = WorkflowOperator(
        clock,
        cluster,
        retry_policy=RetryPolicy(limit=3),
        failure_injector=FailureInjector(seed=11, retryable_fraction=1.0),
        tracer=tracer,
        metrics=metrics,
    )
    for index in range(16):
        operator.submit(_build_workflow(index))
    operator.run_to_completion()
    return clock.now


def _run_scenario(traced: bool):
    kwargs = {}
    if traced:
        kwargs = {"tracer": Tracer(), "metrics": MetricsRegistry()}
    return run_scenario(
        "image-segmentation", policy="couler", iterations=2, seed=0, **kwargs
    )


def _min_wall_time(repeats: int, fn, *args) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - started)
    return best


def test_tracing_overhead_under_ten_percent(save_report):
    repeats = 5
    _run_scenario(traced=True)  # warm-up (imports, allocator, caches)
    untraced = _min_wall_time(repeats, _run_scenario, False)
    traced = _min_wall_time(repeats, _run_scenario, True)
    ratio = traced / untraced if untraced else 1.0
    report = (
        "obs overhead micro-benchmark (image-segmentation, 2 iterations)\n"
        f"  untraced min wall time: {untraced * 1e3:8.2f} ms\n"
        f"  traced   min wall time: {traced * 1e3:8.2f} ms\n"
        f"  ratio: {ratio:.3f} (budget {MAX_RATIO:.2f})"
    )
    save_report("bench_obs_overhead", report)
    assert traced <= untraced * MAX_RATIO + ABS_SLACK_S, report


def test_traced_run_matches_untraced_virtual_time():
    # Instrumentation must be observation-only: identical seeds give
    # identical virtual end times with and without tracing.
    untraced_end = _simulate()
    traced_end = _simulate(tracer=Tracer(), metrics=MetricsRegistry())
    assert traced_end == untraced_end
