"""Production-scale fairness benchmark: 50k workflows across 100 tenants.

The throughput bench (``test_bench_dispatch_throughput.py``) compares
fairness policies at a contended-but-small 500-workflow load.  This one
answers the production question from the paper's evaluation: does the
weighted-fair scheduler keep *per-tenant* tail latency and starvation
bounded when the tenant population is two orders of magnitude larger
than the policy's test fixtures?

Shape:

* 100 tenants (``t00``..``t99``) with seeded priorities and fairness
  weights; every fifth tenant runs in the ``serving`` SLO lane, the
  rest are ``batch``.
* ~50k two-step workflows (override with
  ``BENCH_DISPATCH_SCALE_WORKFLOWS`` — CI smoke uses a small count),
  Poisson arrivals sized for ~80% fleet utilisation.
* A ten-cluster fleet: two GPU clusters and eight CPU clusters
  (2304 CPUs, 32 GPUs total), ``protect_gpu`` keeping CPU filler off
  the GPU clusters.

The payload records per-tenant p99 queue latency and pending-inclusive
starvation gaps (all 100 columns), plus lane-level aggregates, and the
run is replayed under the same seed to assert determinism.  Results
land in ``benchmarks/results/BENCH_dispatch_scale.json``.
"""

from __future__ import annotations

import json
import os
import random
import time

from bench_utils import run_once

from repro.engine.admission import AdmissionPipeline
from repro.engine.fairness import SLO_BATCH, SLO_SERVING
from repro.engine.queue import UserQuota
from repro.engine.spec import ExecutableStep, ExecutableWorkflow
from repro.engine.status import WorkflowPhase
from repro.k8s.cluster import Cluster
from repro.k8s.resources import ResourceQuantity
from repro.workloads.arrivals import PoissonArrivalProcess

GB = 2**30

NUM_WORKFLOWS = int(os.environ.get("BENCH_DISPATCH_SCALE_WORKFLOWS", "50000"))
NUM_TENANTS = 100
SEED = 7321
#: ~1.1 arrivals/s against ~2300 CPUs of capacity and ~1900 reserved
#: cpu-seconds per workflow keeps the fleet around 90% utilised —
#: contended enough for real queueing tails, stable enough to drain.
ARRIVAL_RATE_PER_S = 1.1


def _tenants(seed: int):
    """100 tenants with seeded priorities, weights, and SLO lanes."""
    rng = random.Random(seed)
    tenants = []
    for index in range(NUM_TENANTS):
        name = f"t{index:02d}"
        lane = SLO_SERVING if index % 5 == 0 else SLO_BATCH
        tenants.append(
            {
                "name": name,
                "priority": rng.randrange(10),
                "weight": rng.choice([0.5, 1.0, 2.0, 4.0]),
                "slo_class": lane,
            }
        )
    return tenants


def _clusters():
    fleet = [
        Cluster.uniform(
            f"gpu-{i}", 4, cpu_per_node=32.0, memory_per_node=128 * GB, gpu_per_node=4
        )
        for i in range(2)
    ]
    fleet += [
        Cluster.uniform(f"cpu-{i}", 8, cpu_per_node=32.0, memory_per_node=128 * GB)
        for i in range(8)
    ]
    return fleet


def _fleet(count: int, seed: int, tenants):
    rng = random.Random(seed)
    fleet = []
    for index in range(count):
        tenant = tenants[index % NUM_TENANTS]
        gpu = 1 if rng.random() < 0.08 else 0
        cpu = rng.choice([2.0, 4.0, 8.0, 16.0])
        workflow = ExecutableWorkflow(name=f"wf-{index}")
        workflow.add_step(
            ExecutableStep(
                name="prep",
                duration_s=20 + rng.random() * 40,
                requests=ResourceQuantity(cpu=cpu / 2, memory=2 * GB),
            )
        )
        workflow.add_step(
            ExecutableStep(
                name="main",
                duration_s=60 + rng.random() * 120,
                requests=ResourceQuantity(cpu=cpu, memory=4 * GB, gpu=gpu),
                dependencies=["prep"],
            )
        )
        fleet.append((workflow, tenant))
    return fleet


def _percentile(values, q):
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def _run(seed: int) -> dict:
    tenants = _tenants(seed)
    quotas = {
        t["name"]: UserQuota(
            user=t["name"], cpu_limit=2304.0, memory_limit=8192 * GB, gpu_limit=32
        )
        for t in tenants
    }
    weights = {t["name"]: t["weight"] for t in tenants}
    pipeline = AdmissionPipeline(
        _clusters(),
        quotas=quotas,
        seed=seed,
        aging_rate=0.02,
        max_pending=4 * NUM_WORKFLOWS,
        fairness="weighted-fair",
        tenant_weights=weights,
        protect_gpu=True,
    )
    arrivals = PoissonArrivalProcess(rate_per_s=ARRIVAL_RATE_PER_S, seed=seed).times(
        NUM_WORKFLOWS
    )
    for at, (workflow, tenant) in zip(arrivals, _fleet(NUM_WORKFLOWS, seed, tenants)):
        pipeline.submit_at(
            at,
            workflow,
            user=tenant["name"],
            priority=tenant["priority"],
            slo_class=tenant["slo_class"],
        )
    makespan = pipeline.run()

    latencies = pipeline.queue_latencies()
    completed = sum(
        1
        for record in pipeline.completed_records()
        if record.phase == WorkflowPhase.SUCCEEDED
    )
    per_tenant = pipeline.tenant_queue_latencies()
    gaps = pipeline.tenant_starvation_gaps()
    lane_of = {t["name"]: t["slo_class"] for t in tenants}
    lane_latencies = {SLO_SERVING: [], SLO_BATCH: []}
    for tenant, values in per_tenant.items():
        lane_latencies[lane_of[tenant]].extend(values)
    tenant_columns = {
        t["name"]: {
            "slo_class": t["slo_class"],
            "weight": t["weight"],
            "priority": t["priority"],
            "queue_latency_p99_s": round(
                _percentile(per_tenant.get(t["name"], []), 0.99), 3
            ),
            "starvation_gap_s": round(gaps.get(t["name"], 0.0), 3),
        }
        for t in tenants
    }
    return {
        "workflows": NUM_WORKFLOWS,
        "tenants": NUM_TENANTS,
        "seed": seed,
        "completed": completed,
        "rejected": len(pipeline.rejected()),
        "makespan_s": makespan,
        "workflows_per_sec": completed / makespan if makespan else 0.0,
        "queue_latency_p50_s": _percentile(latencies, 0.50),
        "queue_latency_p99_s": _percentile(latencies, 0.99),
        "queue_latency_p99_by_lane_s": {
            lane: round(_percentile(values, 0.99), 3)
            for lane, values in lane_latencies.items()
        },
        "starvation_gap_s": pipeline.starvation_gap(),
        "worst_tenant_gap_s": max(gaps.values()) if gaps else 0.0,
        "per_tenant": tenant_columns,
    }


def test_dispatch_scale(benchmark, results_dir, save_report):
    started = time.perf_counter()
    payload = run_once(benchmark, _run, SEED)
    wall_s = time.perf_counter() - started
    replay = _run(SEED)
    assert payload == replay, "same-seed scale runs diverged"

    assert payload["completed"] + payload["rejected"] == NUM_WORKFLOWS
    assert payload["completed"] >= 0.95 * NUM_WORKFLOWS
    assert len(payload["per_tenant"]) == NUM_TENANTS
    # Every tenant got served: pending-inclusive gaps mean an ignored
    # tenant would show a gap on the order of the whole makespan.
    assert payload["worst_tenant_gap_s"] < 0.25 * payload["makespan_s"]
    # The serving lane exists to shield latency-sensitive tenants from
    # the batch backlog; at minimum it must not be the slower lane.
    if NUM_WORKFLOWS >= 5000:
        lanes = payload["queue_latency_p99_by_lane_s"]
        assert lanes[SLO_SERVING] <= lanes[SLO_BATCH] + 1e-9

    out = results_dir / "BENCH_dispatch_scale.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")

    worst = sorted(
        payload["per_tenant"].items(),
        key=lambda kv: kv[1]["starvation_gap_s"],
        reverse=True,
    )
    lines = [
        "dispatch scale benchmark (100 tenants, weighted-fair + SLO lanes)",
        f"  {payload['completed']}/{NUM_WORKFLOWS} completed, "
        f"{payload['rejected']} shed, makespan {payload['makespan_s']:.0f}s "
        f"(virtual), {payload['workflows_per_sec']:.3f} wf/s",
        f"  fleet p50 {payload['queue_latency_p50_s']:.1f}s  "
        f"p99 {payload['queue_latency_p99_s']:.1f}s  "
        f"worst-tenant gap {payload['worst_tenant_gap_s']:.1f}s",
        f"  lane p99: serving "
        f"{payload['queue_latency_p99_by_lane_s'][SLO_SERVING]:.1f}s · batch "
        f"{payload['queue_latency_p99_by_lane_s'][SLO_BATCH]:.1f}s",
        "  worst five tenants (gap / p99 / lane / weight):",
    ]
    for name, row in worst[:5]:
        lines.append(
            f"    {name}: {row['starvation_gap_s']:>8.1f}s "
            f"{row['queue_latency_p99_s']:>8.1f}s  {row['slo_class']:<7} "
            f"w={row['weight']}"
        )
    lines.append(
        f"  harness wall time: {wall_s:.2f}s (not part of the compared payload)"
    )
    lines.append(f"  [payload saved to {out}]")
    save_report("bench_dispatch_scale", "\n".join(lines))
