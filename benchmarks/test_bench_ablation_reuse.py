"""Ablation bench: cached-step skipping (reuse of intermediate results)."""

from bench_utils import run_once

from repro.experiments import ablation_reuse


def test_ablation_reuse(benchmark, save_report):
    rows = run_once(benchmark, ablation_reuse.run)
    save_report("ablation_reuse", ablation_reuse.report(rows))
    assert all(r["ok"] for r in rows)
    by_key = {(r["scenario"], r["skip"]): r for r in rows}
    scenarios = {r["scenario"] for r in rows}
    for scenario in scenarios:
        off = by_key[(scenario, False)]
        on = by_key[(scenario, True)]
        # Skipping never slows the rerun and must skip at least the
        # data-producing steps.
        assert on["second_round_s"] < off["second_round_s"], scenario
        assert on["steps_skipped"] > 0, scenario
        assert off["steps_skipped"] == 0, scenario
