"""Ablation bench: Eq. 6 score components and alpha/beta sensitivity."""

from bench_utils import run_once

from repro.experiments import ablation_cache_score


def test_ablation_cache_score(benchmark, save_report):
    results = run_once(benchmark, ablation_cache_score.run)
    save_report("ablation_cache_score", ablation_cache_score.report(results))
    full = results["full (a=1.5, b=1)"]
    no_reuse = results["no reuse (F off)"]
    # The reuse term carries the policy: dropping it collapses hits.
    assert no_reuse.hit_ratio < full.hit_ratio - 0.15
    assert no_reuse.total_time_s > full.total_time_s
    # alpha/beta are not hypersensitive near the production choice.
    for label in ("alpha=0.5", "alpha=3.0", "beta=0.5", "beta=2.0"):
        assert abs(results[label].total_time_s - full.total_time_s) < 0.1 * full.total_time_s
