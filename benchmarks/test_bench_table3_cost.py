"""Table III bench: tokens and dollars per generated workflow."""

from bench_utils import run_once

from repro.experiments import table3_cost


def test_table3_cost(benchmark, save_report):
    results = run_once(benchmark, table3_cost.run)
    save_report("table3_cost", table3_cost.report(results))
    gpt35 = results["gpt-3.5-turbo"]
    gpt4 = results["gpt-4"]
    # Shape: both models land in the paper's few-thousand-token band;
    # GPT-4 costs an order of magnitude more per workflow.
    assert 2_500 <= gpt35["tokens"] <= 5_500
    assert 2_500 <= gpt4["tokens"] <= 5_500
    assert gpt35["usd"] < 0.02
    assert 0.08 <= gpt4["usd"] <= 0.25
    assert gpt4["usd"] > 10 * gpt35["usd"]
