"""Table II bench: pass@k for NL -> unified programming code."""

from bench_utils import run_once

from repro.experiments import table2_passk


def test_table2_passk(benchmark, save_report):
    results = run_once(benchmark, table2_passk.run)
    save_report("table2_passk", table2_passk.report(results))
    # Shape: GPT-4 beats GPT-3.5, "+Ours" lifts both raw models by a
    # wide margin, and every row's pass@k is nondecreasing in k.
    for label, scores in results.items():
        assert scores[1] <= scores[3] <= scores[5], (label, scores)
    for k in (1, 3, 5):
        assert results["GPT-4"][k] > results["GPT-3.5"][k]
        assert results["GPT-3.5 + Ours"][k] > results["GPT-3.5"][k] + 10
        assert results["GPT-4 + Ours"][k] > results["GPT-4"][k] + 10
        assert results["GPT-4 + Ours"][k] > results["GPT-3.5 + Ours"][k]
    # Bands: pass@1 within a few points of the paper's Table II.
    assert abs(results["GPT-3.5"][1] - 35.2) < 8
    assert abs(results["GPT-4"][1] - 45.8) < 8
    assert abs(results["GPT-3.5 + Ours"][1] - 61.3) < 8
    assert abs(results["GPT-4 + Ours"][1] - 73.1) < 8
