"""Fig. 17 bench: data caching for table and file reads (App. D.C)."""

from bench_utils import run_once

from repro.experiments import fig17_datacache


def test_fig17_datacache(benchmark, save_report):
    results = run_once(benchmark, fig17_datacache.run)
    save_report("fig17_datacache", fig17_datacache.report(results))
    # Shape (a): caching roughly doubles table read throughput.
    for row in results["tables"]:
        assert 1.5 <= row["speedup"] <= 3.5, row
    # Shape (b): with enough sharing jobs the cache wins by >4x, and the
    # advantage grows with the number of jobs.
    by_workload = {}
    for row in results["files"]:
        by_workload.setdefault(row["workload"], []).append(row)
    for workload, rows in by_workload.items():
        speedups = [r["speedup"] for r in sorted(rows, key=lambda r: r["jobs"])]
        assert speedups == sorted(speedups), (workload, speedups)
        assert speedups[-1] > 4.0, (workload, speedups)
