"""Shared helper for single-shot experiment benchmarks."""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Run a heavy experiment exactly once under the benchmark timer.

    The experiment drivers are whole simulations; timing them for one
    round is the honest measurement (pytest-benchmark would otherwise
    re-run them many times).
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
