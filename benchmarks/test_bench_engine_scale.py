"""Engine hot-path scale benchmark: flat per-workflow cost at 100×.

The fairness scale bench (``test_bench_dispatch_scale.py``) asks
whether the *policies* hold up at production tenant counts.  This one
asks the hot-path question behind the EngineConfig v1 speed program:
does per-workflow engine cost stay **flat** as the fleet grows from 1k
to 100k workflows?  Before the program, several paths were superlinear
(full event-list scans in SimClock, whole-waitq rescans per completion,
every-pending-every-pass admission retries, per-read capacity
recomputation); each is now an incremental index, and this benchmark is
the regression gate.

Shape (from :mod:`repro.workloads.fleetgen`):

* sizes from ``BENCH_ENGINE_SCALE_SIZES`` (default ``1000,10000,100000``
  — CI uses a reduced sweep),
* a fixed 6-cluster/24-node fleet with arrivals at one workflow per
  0.25 virtual seconds, so steady-state backlog — and hence *expected*
  per-workflow cost — is size-independent by construction,
* the default fast engine for every size, plus a naive
  (``EngineConfig(engine="naive")``) contrast run at the smallest size
  (recorded for the report; the fast-path win concentrates under
  backlog, so no ratio is asserted here — the ``engine_fast`` oracle
  owns equivalence, this bench owns flatness).

Asserts:

* **flatness** — per-workflow wall cost at the largest size is within
  ``FLATNESS_BUDGET`` (1.5×) of the smallest size's cost,
* **determinism** — the smallest size reruns to an identical admission
  digest (virtual-time placements, deferral counts, cluster choices),
* **ratchet** — per-workflow cost may beat the committed baselines in
  ``BENCH_engine_scale_baselines.json`` but not regress past them
  (generous 2.5× tolerance: these are wall-clock numbers on shared CI
  runners).

The payload lands in ``benchmarks/results/BENCH_engine_scale.json``.
"""

from __future__ import annotations

import hashlib
import json
import os
import time

from repro.control.policy import PolicyConfig
from repro.engine.config import EngineConfig
from repro.engine.status import WorkflowPhase
from repro.workloads.fleetgen import build_fleet, build_pipeline, submit_fleet

SEED = 20240607
SIZES = sorted(
    int(token)
    for token in os.environ.get(
        "BENCH_ENGINE_SCALE_SIZES", "1000,10000,100000"
    ).split(",")
    if token.strip()
)
#: Largest-size per-workflow cost must stay within this factor of the
#: smallest size's (the ISSUE acceptance criterion).
FLATNESS_BUDGET = 1.5
#: Ratchet tolerance against the committed per-size baselines.
RATCHET_TOLERANCE = 2.5

FAST_CONFIG = EngineConfig(
    fairness="weighted-fair", policy=PolicyConfig(aging_rate=0.01)
)
NAIVE_CONFIG = EngineConfig(
    engine="naive", fairness="weighted-fair", policy=PolicyConfig(aging_rate=0.01)
)


def _digest(records) -> str:
    """Determinism digest over everything placement decided.

    Virtual times and cluster choices only — wall-clock timings stay
    out so two same-seed runs hash identically.
    """
    hasher = hashlib.sha256()
    for record in records:
        hasher.update(
            (
                f"{record.workflow_name}:{record.admitted}:{record.reject_reason}:"
                f"{record.admit_time}:{record.place_time}:{record.finish_time}:"
                f"{record.cluster_name}:{record.deferrals}:{record.preemptions}"
            ).encode()
        )
    return hasher.hexdigest()


def _run(num_workflows: int, config: EngineConfig) -> dict:
    spec = build_fleet(num_workflows, seed=SEED)
    pipeline = build_pipeline(spec, config)
    started = time.perf_counter()
    records = submit_fleet(pipeline, spec)
    makespan = pipeline.run()
    wall_s = time.perf_counter() - started
    placed = sum(
        1
        for record in records
        if record.record is not None
        and record.record.phase == WorkflowPhase.SUCCEEDED
    )
    return {
        "workflows": num_workflows,
        "engine": config.engine,
        "wall_s": round(wall_s, 3),
        "per_workflow_ms": round(1000.0 * wall_s / num_workflows, 4),
        "makespan_s": round(makespan, 3),
        "placed": placed,
        "rejected": sum(1 for record in records if record.admitted is False),
        "digest": _digest(records),
    }


def _check_ratchet(rows: dict, results_dir) -> str:
    baselines_path = results_dir / "BENCH_engine_scale_baselines.json"
    if not baselines_path.exists():
        return "no baselines file; ratchet gate skipped"
    baselines = json.loads(baselines_path.read_text(encoding="utf-8"))
    checked = []
    for size, row in rows.items():
        entry = baselines.get(str(size))
        if entry is None:
            continue
        ceiling = entry["per_workflow_ms"] * RATCHET_TOLERANCE
        assert row["per_workflow_ms"] <= ceiling, (
            f"engine cost ratchet: {size} workflows took "
            f"{row['per_workflow_ms']}ms/wf, baseline "
            f"{entry['per_workflow_ms']}ms/wf (x{RATCHET_TOLERANCE} ceiling "
            f"{ceiling:.3f}ms)"
        )
        checked.append(str(size))
    if not checked:
        return "no baseline entries for these sizes; ratchet gate skipped"
    return f"ratchet ok at sizes {', '.join(checked)}"


def test_engine_scale(results_dir, save_report):
    rows = {}
    for size in SIZES:
        rows[size] = _run(size, FAST_CONFIG)

    smallest, largest = SIZES[0], SIZES[-1]

    # Determinism: the same seed at the same size must replay to the
    # same virtual-time placement schedule, bit for bit.
    rerun = _run(smallest, FAST_CONFIG)
    assert rerun["digest"] == rows[smallest]["digest"], (
        "same-seed engine runs diverged"
    )
    assert rerun["makespan_s"] == rows[smallest]["makespan_s"]

    # Naive contrast (recorded, not gated — equivalence is the
    # engine_fast oracle's job, and the fast-path win concentrates
    # under backlog rather than in this bounded-backlog scenario).
    naive = _run(smallest, NAIVE_CONFIG)
    assert naive["digest"] == rows[smallest]["digest"], (
        "naive engine produced a different placement schedule than fast"
    )

    # Flatness: per-workflow engine cost at the largest size within
    # FLATNESS_BUDGET of the smallest.  This is the acceptance line —
    # any superlinear path shows up as a blown ratio at 10–100×.
    ratio = (
        rows[largest]["per_workflow_ms"] / rows[smallest]["per_workflow_ms"]
        if rows[smallest]["per_workflow_ms"]
        else 1.0
    )
    if largest >= 10 * smallest:
        assert ratio <= FLATNESS_BUDGET, (
            f"per-workflow cost is not flat: {smallest} workflows cost "
            f"{rows[smallest]['per_workflow_ms']}ms/wf but {largest} cost "
            f"{rows[largest]['per_workflow_ms']}ms/wf (x{ratio:.2f} > "
            f"x{FLATNESS_BUDGET})"
        )

    for size, row in rows.items():
        assert row["placed"] + row["rejected"] == size
        assert row["placed"] >= 0.99 * size

    ratchet_note = _check_ratchet(rows, results_dir)

    payload = {
        "seed": SEED,
        "sizes": SIZES,
        "flatness_budget": FLATNESS_BUDGET,
        "flatness_ratio": round(ratio, 3),
        "rows": {str(size): row for size, row in rows.items()},
        "naive_contrast": naive,
        "determinism": {
            "digest": rows[smallest]["digest"],
            "rerun_identical": True,
        },
        "ratchet": ratchet_note,
    }
    out = results_dir / "BENCH_engine_scale.json"
    out.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    lines = [
        "engine scale benchmark (fast hot paths, fixed fleet, open-loop arrivals)",
        f"  sizes {SIZES}, flatness x{ratio:.2f} (budget x{FLATNESS_BUDGET})",
    ]
    for size in SIZES:
        row = rows[size]
        lines.append(
            f"  {size:>7} workflows: {row['per_workflow_ms']:>7.3f} ms/wf  "
            f"wall {row['wall_s']:>8.2f}s  makespan {row['makespan_s']:>10.1f}s "
            f"(virtual)  placed {row['placed']}"
        )
    lines.append(
        f"  naive contrast @ {smallest}: {naive['per_workflow_ms']:.3f} ms/wf "
        f"(fast {rows[smallest]['per_workflow_ms']:.3f} ms/wf)"
    )
    lines.append(f"  determinism digest {rows[smallest]['digest'][:16]}… (rerun identical)")
    lines.append(f"  {ratchet_note}")
    lines.append(f"  [payload saved to {out}]")
    save_report("bench_engine_scale", "\n".join(lines))
