"""Fig. 7 bench: automatic caching vs No / ALL across three scenarios."""

from bench_utils import run_once

from repro.experiments import fig7_caching


def test_fig7_caching(benchmark, save_report):
    grid = run_once(benchmark, fig7_caching.run)
    save_report("fig7_caching", fig7_caching.report(grid))
    for scenario, results in grid.items():
        by_policy = {r.policy: r for r in results}
        no, all_, couler = by_policy["no"], by_policy["all"], by_policy["couler"]
        assert all(r.all_succeeded for r in results), scenario
        # Who wins: caching beats no-caching on execution time.
        assert couler.total_time_s < no.total_time_s, scenario
        assert all_.total_time_s <= no.total_time_s, scenario
        # Couler pays a fraction of ALL's storage (the scatter story).
        assert couler.peak_cache_gb < 0.5 * all_.peak_cache_gb, scenario
        # And lands within ~15% of ALL's execution time.
        assert couler.total_time_s <= 1.15 * all_.total_time_s, scenario
        assert couler.hit_ratio > 0.5, scenario
