"""Micro-benchmarks of the hot paths the optimizers depend on.

Unlike the experiment benches (single-shot simulations), these measure
throughput of the core operations with pytest-benchmark's normal
multi-round timing: IR topological sort, Argo compilation, cache
admission under pressure, DFS splitting, and simulation-clock event
dispatch.
"""

from __future__ import annotations

import random

from repro.backends.argo import ArgoBackend
from repro.caching.artifact_store import ArtifactStore
from repro.caching.manager import CacheManager
from repro.engine.simclock import SimClock
from repro.engine.spec import ArtifactSpec
from repro.ir.graph import WorkflowIR
from repro.ir.nodes import IRNode, OpKind, SimHint
from repro.parallelism.budget import BudgetModel
from repro.parallelism.splitter import WorkflowSplitter

GB = 2**30


def _layered_ir(num_layers: int = 10, width: int = 20, seed: int = 1) -> WorkflowIR:
    rng = random.Random(seed)
    ir = WorkflowIR(name="micro")
    previous = []
    for layer in range(num_layers):
        current = []
        for index in range(width):
            name = f"l{layer}n{index}"
            ir.add_node(IRNode(name=name, op=OpKind.CONTAINER, image="w:v1",
                               sim=SimHint(duration_s=10)))
            for parent in rng.sample(previous, min(2, len(previous))):
                ir.add_edge(parent, name)
            current.append(name)
        previous = current
    return ir


def test_bench_topological_sort(benchmark):
    ir = _layered_ir()
    order = benchmark(ir.topological_order)
    assert len(order) == len(ir.nodes)


def test_bench_argo_compile(benchmark):
    ir = _layered_ir()
    backend = ArgoBackend()
    manifest = benchmark(backend.compile, ir)
    assert manifest["kind"] == "Workflow"


def test_bench_cache_admission(benchmark):
    def admit_churn():
        manager = CacheManager(policy="lru", capacity_bytes=8 * GB)
        for index in range(200):
            manager.on_artifact_produced(
                ArtifactSpec(uid=f"a{index}", size_bytes=256 * 2**20), now=float(index)
            )
        return manager.store.stats.evictions

    evictions = benchmark(admit_churn)
    assert evictions > 0


def test_bench_splitter(benchmark):
    ir = _layered_ir(num_layers=10, width=20)
    budget = BudgetModel(max_yaml_bytes=30_000, max_steps=60)
    plan = benchmark(WorkflowSplitter(budget).split, ir)
    assert plan.num_parts > 1


def test_bench_simclock_dispatch(benchmark):
    def pump():
        clock = SimClock()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 5_000:
                clock.schedule(1.0, tick)

        clock.schedule(0.0, tick)
        clock.run()
        return count[0]

    assert benchmark(pump) == 5_000
