"""Figs. 14-16 bench: Couler caching at 10G / 20G / 30G (App. D.B)."""

from bench_utils import run_once

from repro.experiments import fig14_16_cache_sizes


def test_fig14_16_cache_sizes(benchmark, save_report):
    grid = run_once(benchmark, fig14_16_cache_sizes.run)
    save_report("fig14_16_cache_sizes", fig14_16_cache_sizes.report(grid))
    for scenario, results in grid.items():
        no_cache = results[0]
        sized = results[1:]
        assert no_cache.policy == "no"
        # Shape: every cache size improves on no-cache, and
        # effectiveness increases with the cache size (paper App. D.B).
        for run in sized:
            assert run.total_time_s < no_cache.total_time_s, scenario
        hit_ratios = [run.hit_ratio for run in sized]
        assert hit_ratios == sorted(hit_ratios), (scenario, hit_ratios)
        assert sized[-1].total_time_s <= sized[0].total_time_s, scenario
