"""Scenario-corpus e2e benchmark: per-persona latency and cache reuse.

The fleetgen scale benches stress the engine with synthetic uniform
workflows; this one runs the *scenario corpus* — frontend-compiled
SQLFlow and NL pipelines with persona-shaped arrivals and rerun
redundancy — through the full caching → splitting → admission stack
(:mod:`repro.experiments.sql_nl_pipeline`) and gates the numbers the
paper's story depends on:

* **determinism** — same seed+size reruns to an identical run
  fingerprint digest and corpus digest (virtual-time placement, cache
  decisions and splitting are all seed-pure),
* **reuse** — rerun-heavy personas actually hit the cache (aggregate
  hit ratio above a floor; per-persona ratios recorded),
* **ratchet** — per-persona p99 queue latency and hit ratios may
  improve on the committed baselines in ``BENCH_corpus_baselines.json``
  but not regress past them.  These are *virtual* seconds — fully
  deterministic — so the latency tolerance is tight (1.2×) and the
  hit-ratio floor is absolute (-0.05).

Sizes come from ``BENCH_CORPUS_SIZE`` (default 48; CI smoke can shrink
it, in which case baseline entries for other sizes are skipped).  The
payload lands in ``benchmarks/results/BENCH_corpus.json``.
"""

from __future__ import annotations

import hashlib
import json
import os
import time

from repro.experiments import sql_nl_pipeline
from repro.k8s.cluster import Cluster
from repro.workloads.corpus import GB, CorpusSpec, build_corpus

SEED = 20240607
SIZE = int(os.environ.get("BENCH_CORPUS_SIZE", "48"))
CACHE_GB = 2.0
#: Virtual-time numbers are deterministic; only corpus-content drift
#: (new personas, schema changes) should move them, and that should be
#: a deliberate baseline refresh — hence the tight ceiling.
LATENCY_RATCHET = 1.2
HIT_RATIO_SLACK = 0.05
#: The corpus is rerun-heavy by construction (persona rerun
#: probabilities 0.15–0.55); the aggregate hit ratio must clear this.
MIN_AGGREGATE_HIT_RATIO = 0.5


def _clusters():
    """A deliberately tight fleet so queue latency is non-degenerate.

    The default corpus fleet (16 nodes) absorbs the open-loop arrival
    rate without queueing; two small clusters (one with the GPU pool)
    force contention, which is what the p50/p99 baselines gate.
    """
    return [
        Cluster.uniform(
            "bench-c0", 2, cpu_per_node=8.0, memory_per_node=32 * GB,
            gpu_per_node=2,
        ),
        Cluster.uniform(
            "bench-c1", 2, cpu_per_node=8.0, memory_per_node=32 * GB,
        ),
    ]


def _digest(result) -> str:
    """sha256 over everything the run decided (virtual time only)."""
    hasher = hashlib.sha256()
    hasher.update(result.corpus_digest.encode())
    for row in result.fingerprint:
        hasher.update(repr(row).encode())
    return hasher.hexdigest()


def _run():
    corpus = build_corpus(CorpusSpec(seed=SEED, size=SIZE))
    started = time.perf_counter()
    result = sql_nl_pipeline.run(
        engine="fast", cache_gb=CACHE_GB, corpus=corpus, clusters=_clusters()
    )
    wall_s = time.perf_counter() - started
    personas = {
        stats.persona: {
            "entries": stats.entries,
            "workflows": stats.workflows,
            "reruns": stats.reruns,
            "hit_ratio": round(stats.hit_ratio, 4),
            "queue_p50_s": round(stats.queue_p50_s, 3),
            "queue_p99_s": round(stats.queue_p99_s, 3),
            "makespan_s": round(stats.makespan_s, 3),
        }
        for stats in result.personas
    }
    row = {
        "size": SIZE,
        "engine": result.engine,
        "wall_s": round(wall_s, 3),
        "workflows_submitted": result.workflows_submitted,
        "split_parts": result.split_parts,
        "makespan_s": round(result.makespan_s, 3),
        "personas": personas,
        "corpus_digest": result.corpus_digest,
        "digest": _digest(result),
    }
    return row, result


def _check_ratchet(row: dict, results_dir) -> str:
    baselines_path = results_dir / "BENCH_corpus_baselines.json"
    if not baselines_path.exists():
        return "no baselines file; ratchet gate skipped"
    baselines = json.loads(baselines_path.read_text(encoding="utf-8"))
    entry = baselines.get(str(SIZE))
    if entry is None:
        return f"no baseline entry for size {SIZE}; ratchet gate skipped"
    for persona, base in entry["personas"].items():
        current = row["personas"].get(persona)
        assert current is not None, f"persona {persona} vanished from corpus"
        ceiling = base["queue_p99_s"] * LATENCY_RATCHET
        assert current["queue_p99_s"] <= ceiling, (
            f"{persona} p99 queue latency ratchet: {current['queue_p99_s']}s "
            f"vs baseline {base['queue_p99_s']}s (x{LATENCY_RATCHET} ceiling "
            f"{ceiling:.3f}s)"
        )
        floor = base["hit_ratio"] - HIT_RATIO_SLACK
        assert current["hit_ratio"] >= floor, (
            f"{persona} cache hit ratio regressed: {current['hit_ratio']} "
            f"vs baseline {base['hit_ratio']} (floor {floor:.3f})"
        )
    return f"ratchet ok for {len(entry['personas'])} personas at size {SIZE}"


def test_corpus_e2e(results_dir, save_report):
    row, result = _run()

    # Determinism: the full stack replays bit-for-bit on the same seed.
    rerun, rerun_result = _run()
    assert rerun_result.corpus_digest == result.corpus_digest, (
        "corpus build diverged"
    )
    assert rerun["digest"] == row["digest"], "same-seed corpus runs diverged"

    # Everything admitted and finished; the splitter fired.
    assert row["workflows_submitted"] > SIZE  # multi-statement entries
    assert row["split_parts"] > 0

    # Reuse: the rerun-redundant corpus must actually hit the cache.
    total_hits = sum(stats.cache_hits for stats in result.personas)
    total = total_hits + sum(stats.cache_misses for stats in result.personas)
    aggregate = total_hits / total if total else 0.0
    assert aggregate >= MIN_AGGREGATE_HIT_RATIO, (
        f"aggregate hit ratio {aggregate:.3f} below {MIN_AGGREGATE_HIT_RATIO}"
    )

    ratchet_note = _check_ratchet(row, results_dir)

    payload = {
        "seed": SEED,
        "size": SIZE,
        "cache_gb": CACHE_GB,
        "aggregate_hit_ratio": round(aggregate, 4),
        "row": row,
        "determinism": {"digest": row["digest"], "rerun_identical": True},
        "ratchet": ratchet_note,
    }
    out = results_dir / "BENCH_corpus.json"
    out.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    lines = [
        "scenario corpus e2e benchmark (SQL+NL frontends -> cache/split/admission)",
        f"  seed {SEED}, size {SIZE}, cache {CACHE_GB}GB, "
        f"{row['workflows_submitted']} workflows ({row['split_parts']} split parts)",
        f"  aggregate hit ratio {aggregate:.3f}, virtual makespan "
        f"{row['makespan_s']:.0f}s, wall {row['wall_s']:.2f}s",
    ]
    for persona in sorted(row["personas"]):
        stats = row["personas"][persona]
        lines.append(
            f"  {persona:>9}: {stats['workflows']:>3} wf  hit "
            f"{stats['hit_ratio']:.3f}  queue p50 {stats['queue_p50_s']:>8.1f}s  "
            f"p99 {stats['queue_p99_s']:>8.1f}s"
        )
    lines.append(f"  determinism digest {row['digest'][:16]}… (rerun identical)")
    lines.append(f"  {ratchet_note}")
    lines.append(f"  [payload saved to {out}]")
    save_report("bench_corpus", "\n".join(lines))
