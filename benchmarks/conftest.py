"""Benchmark-suite plumbing.

Each benchmark wraps one experiment driver (``repro.experiments.*``),
runs it exactly once under pytest-benchmark (these are simulations, not
microseconds-level kernels), asserts the paper's qualitative shape, and
writes the driver's textual report to ``benchmarks/results/`` so
EXPERIMENTS.md can quote it.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def save_report(results_dir):
    """Write (and echo) an experiment's report under results/."""

    def _save(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n[saved to {path}]")

    return _save

