"""Adaptive-policy ablation benchmark: controller vs static defaults.

Runs ``repro.experiments.adaptive_ablation`` — the controller tunes a
:class:`~repro.control.policy.PolicyConfig` over the scenario corpus by
successive halving, then the tuned policy and the paper's static
constants run the same corpus across a cache-size sweep — and gates:

* **determinism** — same seed reruns to an identical
  :meth:`AblationResult.digest` (the tune, the sweep and the held-out
  comparison are all seed-pure virtual time),
* **wins** — at the committed size the adaptive policy beats static
  defaults on at least two of the three headline metrics (sweep-mean
  hit ratio, batch-lane queue p99, starvation gap),
* **ratchet** — headline numbers may improve on the committed
  baselines in ``BENCH_adaptive_baselines.json`` but not regress past
  them (1.2× on the latency metrics, -0.05 on hit ratio).

Sizes come from ``BENCH_ADAPTIVE_SIZE`` / ``BENCH_ADAPTIVE_ROUNDS``
(defaults 24 / 3; CI smoke shrinks them, which skips the wins gate and
any baseline entry for other sizes).  The payload lands in
``benchmarks/results/BENCH_adaptive.json``.
"""

from __future__ import annotations

import json
import os

from repro.experiments import adaptive_ablation

SEED = 7
SIZE = int(os.environ.get("BENCH_ADAPTIVE_SIZE", "24"))
ROUNDS = int(os.environ.get("BENCH_ADAPTIVE_ROUNDS", "3"))
#: The committed configuration the wins gate and baselines apply to.
GATED_SIZE = 24
MIN_WINS = 2
LATENCY_RATCHET = 1.2
HIT_RATIO_SLACK = 0.05


def _run() -> adaptive_ablation.AblationResult:
    return adaptive_ablation.run(seed=SEED, tune_size=SIZE, rounds=ROUNDS)


def _check_ratchet(result, results_dir) -> str:
    baselines_path = results_dir / "BENCH_adaptive_baselines.json"
    if not baselines_path.exists():
        return "no baselines file; ratchet gate skipped"
    baselines = json.loads(baselines_path.read_text(encoding="utf-8"))
    entry = baselines.get(str(SIZE))
    if entry is None:
        return f"no baseline entry for size {SIZE}; ratchet gate skipped"
    for metric, direction in adaptive_ablation.HEADLINE_METRICS.items():
        base = entry["headline"][metric]["adaptive"]
        current = result.headline[metric]["adaptive"]
        if direction == "higher":
            floor = base - HIT_RATIO_SLACK
            assert current >= floor, (
                f"{metric} regressed: {current} vs baseline {base} "
                f"(floor {floor:.3f})"
            )
        else:
            ceiling = base * LATENCY_RATCHET
            assert current <= ceiling, (
                f"{metric} ratchet: {current} vs baseline {base} "
                f"(x{LATENCY_RATCHET} ceiling {ceiling:.3f})"
            )
    assert result.wins >= entry["wins"], (
        f"headline wins regressed: {result.wins} vs baseline {entry['wins']}"
    )
    return (
        f"ratchet ok for {len(result.headline)} headline metrics at "
        f"size {SIZE}"
    )


def test_adaptive_ablation(results_dir, save_report):
    result = _run()

    # Determinism: tune + sweep + held-out replay bit-for-bit.
    rerun = _run()
    assert rerun.adaptation_digest == result.adaptation_digest, (
        "controller tune diverged between same-seed runs"
    )
    assert rerun.digest() == result.digest(), (
        "same-seed ablation runs diverged"
    )

    # The search actually searched, and the winner is not the default.
    assert result.tune_evaluations > len(result.headline)
    assert result.tuned_policy, "controller returned the static defaults"

    # The committed configuration must beat static defaults on >=2
    # headline metrics; smoke sizes only record their wins.
    if SIZE == GATED_SIZE:
        assert result.wins >= MIN_WINS, (
            f"adaptive policy won only {result.wins} headline metrics "
            f"(need {MIN_WINS}): {result.headline}"
        )

    ratchet_note = _check_ratchet(result, results_dir)

    payload = {
        "seed": SEED,
        "tune_size": SIZE,
        "rounds": ROUNDS,
        "tuned_policy": result.tuned_policy,
        "adaptation_digest": result.adaptation_digest,
        "tune_evaluations": result.tune_evaluations,
        "sweep": result.sweep,
        "held_out": result.held_out,
        "headline": result.headline,
        "wins": result.wins,
        "determinism": {"digest": result.digest(), "rerun_identical": True},
        "ratchet": ratchet_note,
    }
    out = results_dir / "BENCH_adaptive.json"
    out.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    lines = [
        adaptive_ablation.report(result),
        f"  determinism digest {result.digest()[:16]}… (rerun identical)",
        f"  {ratchet_note}",
        f"  [payload saved to {out}]",
    ]
    save_report("bench_adaptive", "\n".join(lines))
