"""Fig. 6 bench: 12-month migration onto Couler (CUR / MUR / WCR)."""

from bench_utils import run_once

from repro.experiments import fig6_migration


def test_fig6_migration(benchmark, save_report):
    results = run_once(benchmark, fig6_migration.run)
    save_report("fig6_migration", fig6_migration.report(results))
    # Shape: double-digit utilization gains (paper: CUR +18%, MUR +17%)
    # and completion-rate gains for both size classes, larger for 50+.
    assert results["cur_improvement_pct"] > 10.0
    assert results["mur_improvement_pct"] > 10.0
    assert results["wcr_small_improvement_pct"] > 0.0
    assert results["wcr_big_improvement_pct"] > results["wcr_small_improvement_pct"]
    # Preemption path: checkpoint-evicted workflows all complete after
    # restore, and the re-preemption cooldown strictly reduces churn.
    assert results["preempted_workflows"] > 0
    assert results["preempted_wcr"] == 1.0
    assert (
        results["preemption_evictions"]
        < results["preemption_evictions_no_cooldown"]
    )
