"""Fig. 5 bench: workflow activity distributions."""

from bench_utils import run_once

from repro.experiments import fig5_activity


def test_fig5_activity(benchmark, save_report):
    results = run_once(benchmark, fig5_activity.run)
    save_report("fig5_activity", fig5_activity.report(results))
    # Shape: means near the paper's reported production summaries.
    assert 20_000 <= results["daily_mean"] <= 24_000
    assert 0.8 <= results["lifespan_mean_hours"] <= 1.2
    assert 30 <= results["cores_mean"] <= 42
