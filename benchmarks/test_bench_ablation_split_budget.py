"""Ablation bench: Algorithm 3 budget sweep on a 400+-node workflow."""

from bench_utils import run_once

from repro.experiments import ablation_split_budget


def test_ablation_split_budget(benchmark, save_report):
    results = run_once(benchmark, ablation_split_budget.run)
    save_report("ablation_split_budget", ablation_split_budget.report(results))
    # The motivating failure: unsplit, the CRD is rejected outright.
    assert results["unsplit_rejected"]
    rows = results["rows"]
    assert all(r["succeeded"] for r in rows)
    # Every part clears the CRD limit.
    assert all(r["max_part_yaml"] <= 120_000 for r in rows)
    # Smaller budgets -> more parts and no faster makespan.
    parts = [r["parts"] for r in rows]
    makespans = [r["makespan_s"] for r in rows]
    assert parts == sorted(parts, reverse=True)
    assert makespans == sorted(makespans, reverse=True)
