"""Figs. 11-13 bench: Couler vs FIFO vs LRU per scenario (App. D.A)."""

from bench_utils import run_once

from repro.experiments import fig11_13_policies


def test_fig11_13_policies(benchmark, save_report):
    grid = run_once(benchmark, fig11_13_policies.run)
    save_report("fig11_13_policies", fig11_13_policies.report(grid))
    for scenario, results in grid.items():
        by_policy = {r.policy: r for r in results}
        couler = by_policy["couler"]
        assert all(r.all_succeeded for r in results), scenario
        # Shape: under a constrained cache the importance-factor policy
        # beats both recency policies on execution time (paper App. D.A).
        assert couler.total_time_s <= by_policy["fifo"].total_time_s, scenario
        assert couler.total_time_s <= by_policy["lru"].total_time_s, scenario
