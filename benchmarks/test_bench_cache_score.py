"""Cache-score throughput benchmark: incremental vs from-scratch scoring.

Builds a layered multi-workflow index (default 1k and 10k artifacts,
override with ``BENCH_CACHE_SCORE_SIZES`` for CI smoke runs), then
replays a full production trace against a pressure-sized store under
the Couler policy: every step fetches its inputs, produces its output
and is marked done, so all three invalidation paths (graph change,
done-transition, cache-state flip) stay hot.

The run is repeated with the from-scratch scorer (full rescan per
eviction iteration — the pre-incremental behavior) and the memoized
incremental scorer (dirty-set invalidation + lazy min-heap).  Reported
per configuration:

* **admissions/s** — wall-clock admission throughput (context only;
  excluded from the compared payload);
* **score computes** — ``cache_score_computes_total``, the
  deterministic cost proxy the speedup gate is anchored on;
* **computes/eviction** — O(|store|) for the naive rescan, amortized
  O(log n) for the heap path.

Both scorers must produce byte-identical decision logs and resident
sets (the ``scores`` verify oracle proves this per-seed; the bench
asserts it at scale), and a same-seed replay must match exactly.  The
payload lands in ``benchmarks/results/BENCH_cache_score.json``.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import random
import time

from bench_utils import run_once

from repro.caching import CacheManager
from repro.engine.spec import ArtifactSpec, ExecutableStep, ExecutableWorkflow
from repro.k8s.resources import ResourceQuantity

MB = 2**20

SEED = 2024
SIZES = [
    int(size)
    for size in os.environ.get("BENCH_CACHE_SCORE_SIZES", "1000,10000").split(",")
]
STEPS_PER_WORKFLOW = 20
#: Resident-set target; capacity is sized so roughly this many
#: average-sized artifacts fit, keeping the store under pressure.
RESIDENT_TARGET = 96


def _build_workflows(num_artifacts: int, seed: int):
    """Layered workflows, one output artifact per step, cross-linked."""
    rng = random.Random(seed)
    workflows = []
    artifact_pool = []  # uids from earlier workflows, for cross edges
    num_workflows = (num_artifacts + STEPS_PER_WORKFLOW - 1) // STEPS_PER_WORKFLOW
    produced = 0
    for w in range(num_workflows):
        workflow = ExecutableWorkflow(name=f"wf-{w}")
        local_outputs = []
        for s in range(STEPS_PER_WORKFLOW):
            if produced >= num_artifacts:
                break
            uid = f"wf-{w}/a{s}"
            inputs = []
            deps = []
            if local_outputs:
                for dep_s, dep_uid in rng.sample(
                    local_outputs, k=min(len(local_outputs), rng.randint(1, 3))
                ):
                    deps.append(f"s{dep_s}")
                    inputs.append(ArtifactSpec(uid=dep_uid, size_bytes=0))
            if artifact_pool and rng.random() < 0.2:
                inputs.append(
                    ArtifactSpec(uid=rng.choice(artifact_pool), size_bytes=0)
                )
            output = ArtifactSpec(
                uid=uid, size_bytes=rng.randint(1, 64) * MB
            )
            workflow.add_step(
                ExecutableStep(
                    name=f"s{s}",
                    duration_s=10.0 + rng.random() * 120.0,
                    requests=ResourceQuantity(
                        cpu=rng.choice([1.0, 2.0, 4.0, 8.0])
                    ),
                    dependencies=deps,
                    inputs=inputs,
                    outputs=[output],
                )
            )
            local_outputs.append((s, uid))
            produced += 1
        workflows.append(workflow)
        artifact_pool.extend(uid for _, uid in local_outputs)
    return workflows


def _run(scorer_mode: str, num_artifacts: int, seed: int) -> dict:
    workflows = _build_workflows(num_artifacts, seed)
    capacity = RESIDENT_TARGET * 32 * MB  # avg artifact is ~32 MB
    manager = CacheManager(
        policy="couler",
        capacity_bytes=capacity,
        scorer=scorer_mode,
        record_decisions=True,
    )
    for workflow in workflows:
        manager.register_workflow(workflow)
    admissions = 0
    now = 0.0
    started = time.perf_counter()
    for workflow in workflows:
        for step in workflow.steps.values():
            now += 1.0
            for artifact in step.inputs:
                manager.fetch(
                    manager.index.artifacts.get(artifact.uid, artifact), now=now
                )
                admissions += 1
            for artifact in step.outputs:
                manager.on_artifact_produced(artifact, now=now)
                admissions += 1
            manager.on_step_finished(f"{workflow.name}/{step.name}")
    wall_s = time.perf_counter() - started

    stats = manager.store.stats
    computes = int(
        manager.metrics.counter("cache_score_computes_total").total()
    )
    memo_hits = int(
        manager.metrics.counter("cache_score_memo_hits_total").total()
    )
    decisions_digest = hashlib.sha256(
        repr(manager.decisions).encode()
    ).hexdigest()
    evictions = stats.evictions
    return {
        "scorer": scorer_mode,
        "artifacts": num_artifacts,
        "seed": seed,
        "capacity_bytes": capacity,
        "admissions": admissions,
        "insertions": stats.insertions,
        "evictions": evictions,
        "rejected": stats.rejected,
        "resident": len(manager.store),
        "score_computes": computes,
        "score_memo_hits": memo_hits,
        "computes_per_admission": computes / max(1, admissions),
        "computes_per_eviction": computes / max(1, evictions),
        "decisions_digest": decisions_digest,
        # Wall-clock numbers: context only, excluded from the compared
        # deterministic payload.
        "wall_s": wall_s,
        "admissions_per_sec": admissions / wall_s if wall_s else 0.0,
    }


_WALL_KEYS = ("wall_s", "admissions_per_sec")


def _deterministic(payload: dict) -> dict:
    return {k: v for k, v in payload.items() if k not in _WALL_KEYS}


def _run_all(seed: int) -> dict:
    return {
        f"{mode}@{size}": _run(mode, size, seed)
        for size in SIZES
        for mode in ("naive", "incremental")
    }


def test_cache_score_throughput(benchmark, results_dir, save_report):
    results = run_once(benchmark, _run_all, SEED)
    replay = _run_all(SEED)
    assert {k: _deterministic(v) for k, v in results.items()} == {
        k: _deterministic(v) for k, v in replay.items()
    }, "same-seed cache-score runs diverged"

    report_lines = ["cache score benchmark (Algorithm 2 admission loop)"]
    payload = {"seed": SEED, "sizes": SIZES, "results": results, "speedups": {}}
    for size in SIZES:
        naive = results[f"naive@{size}"]
        incr = results[f"incremental@{size}"]
        # Same decisions, insertion for insertion and eviction for
        # eviction — the incremental path changes cost, never behavior.
        assert incr["decisions_digest"] == naive["decisions_digest"], (
            f"incremental decisions diverged from naive at {size} artifacts"
        )
        compute_ratio = naive["score_computes"] / max(1, incr["score_computes"])
        wall_speedup = incr["admissions_per_sec"] / max(
            1e-9, naive["admissions_per_sec"]
        )
        payload["speedups"][str(size)] = {
            "score_compute_ratio": compute_ratio,
            "admissions_per_sec_speedup": wall_speedup,
        }
        # The naive rescan rescores every resident entry per eviction
        # iteration; the heap path only the dirty neighborhood.
        if naive["evictions"]:
            assert naive["computes_per_eviction"] >= 0.5 * RESIDENT_TARGET
            assert incr["computes_per_eviction"] <= max(
                8 * math.log2(max(2, naive["resident"])), 48.0
            )
        report_lines.append(
            f"  {size} artifacts: naive {naive['admissions_per_sec']:.0f} adm/s "
            f"({naive['score_computes']} computes, "
            f"{naive['computes_per_eviction']:.1f}/eviction) | "
            f"incremental {incr['admissions_per_sec']:.0f} adm/s "
            f"({incr['score_computes']} computes, "
            f"{incr['computes_per_eviction']:.1f}/eviction) | "
            f"compute ratio {compute_ratio:.1f}x, wall {wall_speedup:.1f}x"
        )

    # Acceptance gate at the largest index: >= 5x admission throughput.
    top = str(max(SIZES))
    assert payload["speedups"][top]["score_compute_ratio"] >= 5.0
    if max(SIZES) >= 10_000:
        assert payload["speedups"][top]["admissions_per_sec_speedup"] >= 5.0

    out = results_dir / "BENCH_cache_score.json"
    out.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    report_lines.append(f"  [payload saved to {out}]")
    save_report("bench_cache_score", "\n".join(report_lines))
