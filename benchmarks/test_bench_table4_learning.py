"""Table IV bench: learning-time comparison Couler / Argo / Airflow."""

from bench_utils import run_once

from repro.experiments import table4_learning


def test_table4_learning(benchmark, save_report):
    results = run_once(benchmark, table4_learning.run)
    save_report("table4_learning", table4_learning.report(results))
    couler = results["couler"]["minutes"]
    argo = results["argo"]["minutes"]
    airflow = results["airflow"]["minutes"]
    # Shape: Couler is by far the quickest to learn; Argo the slowest.
    assert couler < airflow < argo
    assert argo > 2.5 * couler
    assert airflow > 2.0 * couler
    # Bands: within ~25% of the paper's 18 / 61 / 50 minutes.
    assert abs(argo - 61) / 61 < 0.25
    assert abs(airflow - 50) / 50 < 0.25
